//! [`SenderCore`]: sender-side causal enforcement behind the
//! [`DeliveryCore`] trait.
//!
//! Follows Tong, Liittschwager and Kuper's observation (PAPERS.md) that
//! causal ordering can be enforced entirely on the *sending* side: a
//! sender delays each broadcast until every message it has delivered is
//! known **received by all peers**, so a receiver can deliver on (FIFO)
//! arrival — no causal buffer, no delivery-side vector test at all.
//!
//! Correctness sketch: in this core a receiver's contiguous-received
//! frontier *is* its delivery frontier (messages deliver the moment they
//! are FIFO-accepted). The send gate ensures every causal dependency of
//! an outgoing message `m` was received — hence delivered — at every
//! peer before `m` was even transmitted, so `m` can never arrive ahead of
//! its dependencies. The sender's *own* previous messages are exempt from
//! the gate: per-source FIFO acceptance at the receivers already orders
//! them, which keeps a window of own messages in flight instead of
//! serializing to one.
//!
//! Compared with [`crate::CoCore`] and [`crate::HybridCore`]:
//!
//! * receivers are trivial — accept-on-arrival, zero delivery buffering;
//! * the cost moves to the sender: **latency** (a broadcast after a
//!   foreign delivery waits one confirmation round-trip) and **O(n²)
//!   receipt knowledge** (`peer_recv[j][k]`: what `E_j` is known to have
//!   received of `E_k`);
//! * delivery is FIFO-fast but, as in the hybrid core, not globally
//!   stable when it happens.
//!
//! Loss handling reuses the CO machinery: F1 gaps feed the
//! [`ReorderBuffer`] (buffered PDUs are *not* delivered until the gap
//! closes, preserving FIFO = causal order), F2 ack evidence, and `RET`
//! repair over the [`SendLog`].

use bytes::Bytes;
use causal_order::{EntityId, Seq};
use co_wire::{AckOnlyPdu, DataPdu, Pdu, RetPdu};
use std::collections::VecDeque;

use crate::actions::{Action, ActionSink, Delivery, SubmitOutcome};
use crate::co_core::pdu_bytes;
use crate::config::{Config, ConfigError, DeferralPolicy, RetransmissionPolicy};
use crate::core::{DeliveryCore, Guarantee, MAX_QUEUED_SUBMITS};
use crate::error::ProtocolError;
use crate::flow::{flow_decision, flow_limit, FlowDecision};
use crate::logs::SendLog;
use crate::metrics::Metrics;
use crate::reorder::ReorderBuffer;
use co_observe::{Observer, ProtocolEvent};

/// Exported [`SenderCore`] state (crash-restart; see
/// [`DeliveryCore::export_state`]).
#[derive(Debug, Clone)]
pub struct SenderState {
    /// Received(-and-delivered) frontier per source (own entry: next own
    /// seq).
    pub fifo_next: Vec<Seq>,
    /// Row-major `peer_recv[j][k]`: highest `ack[k]` seen from `E_j`
    /// (row `me` unused).
    pub peer_recv: Vec<Seq>,
    /// Out-of-order PDUs per source awaiting gap repair.
    pub reorder: Vec<Vec<DataPdu>>,
    /// Own sent PDUs retained for retransmission.
    pub send_log: Vec<DataPdu>,
    /// Latest advertised free buffer units per entity.
    pub buf_known: Vec<u32>,
    /// Payloads queued behind the causal send gate / flow condition.
    pub pending: Vec<Bytes>,
    /// Peers heard from since our last own transmission.
    pub heard_since_send: Vec<bool>,
    /// Outstanding `RET` per source: `(lseq, when_sent_us)`.
    pub ret_outstanding: Vec<Option<(Seq, u64)>>,
    /// Whether a paced `AckOnly` reply is owed.
    pub peer_needs_update: bool,
    /// Last transmission time, µs.
    pub last_send_us: u64,
    /// High-water mark of buffered PDUs.
    pub peak_held_pdus: usize,
    /// Cumulative counters.
    pub metrics: Metrics,
}

/// Sender-side causal core: receivers deliver on FIFO arrival.
///
/// See the [module docs](self) for the algorithm and trade-offs.
#[derive(Debug)]
pub struct SenderCore {
    config: Config,
    /// Received frontier per source; in this core it is also the delivery
    /// frontier. `fifo_next[me]` is the next own sequence number.
    fifo_next: Vec<Seq>,
    /// Row-major receipt knowledge: `peer_recv[j * n + k]` = highest
    /// `ack[k]` seen on any PDU from `E_j`. The send gate reads it; the
    /// own row is unused.
    peer_recv: Vec<Seq>,
    /// Out-of-order PDUs awaiting gap repair (selective mode only).
    reorder: ReorderBuffer,
    /// Own sent PDUs for `RET` service.
    sl: SendLog,
    buf_known: Vec<u32>,
    pending: VecDeque<Bytes>,
    heard_since_send: Vec<bool>,
    /// Bumped whenever `fifo_next` changes.
    frontier_version: u64,
    /// `frontier_version` as of the last confirmation-bearing send.
    advertised: u64,
    ret_outstanding: Vec<Option<(Seq, u64)>>,
    peer_needs_update: bool,
    last_send_us: u64,
    peak_held_pdus: usize,
    metrics: Metrics,
}

impl SenderCore {
    fn held(&self) -> usize {
        self.reorder.total_len()
    }

    fn free_buf(&self) -> u32 {
        let held = self.held() as u64 * u64::from(self.config.pdu_buf_units);
        u32::try_from(u64::from(self.config.buffer_units).saturating_sub(held)).unwrap_or(0)
    }

    fn min_buf(&self) -> u32 {
        let me = self.config.me.index();
        self.buf_known
            .iter()
            .enumerate()
            .map(|(j, &b)| if j == me { self.free_buf() } else { b })
            .min()
            .expect("n >= 2")
    }

    fn recv(&self, peer: usize, source: usize) -> Seq {
        self.peer_recv[peer * self.config.n() + source]
    }

    /// Lowest confirmation of *our* PDUs across peers.
    fn min_recv_of_me(&self) -> Seq {
        let me = self.config.me.index();
        (0..self.config.n())
            .map(|j| {
                if j == me {
                    self.fifo_next[me]
                } else {
                    self.recv(j, me)
                }
            })
            .min()
            .expect("n >= 2")
    }

    /// Lowest receipt knowledge of `source` across peers (the `acked`
    /// aggregation advertised on `AckOnly`).
    fn min_recv_of(&self, source: usize) -> Seq {
        let me = self.config.me.index();
        (0..self.config.n())
            .map(|j| {
                if j == me {
                    self.fifo_next[source]
                } else {
                    self.recv(j, source)
                }
            })
            .min()
            .expect("n >= 2")
    }

    /// The causal send gate: every foreign message this entity has
    /// delivered must be known received by *all* peers. The own column is
    /// exempt (per-source FIFO at the receivers orders own messages), so
    /// a window of own broadcasts stays in flight.
    fn causal_gate_open(&self) -> bool {
        let me = self.config.me.index();
        let n = self.config.n();
        (0..n).filter(|&j| j != me).all(|j| {
            (0..n)
                .filter(|&k| k != me)
                .all(|k| self.recv(j, k) >= self.fifo_next[k])
        })
    }

    fn heartbeat_interval(&self) -> u64 {
        let deferral = match self.config.deferral {
            DeferralPolicy::Immediate => 0,
            DeferralPolicy::Deferred { timeout_us } => timeout_us,
        };
        deferral.max(self.config.ret_retry_us).max(1)
    }

    fn reply_pace_us(&self) -> u64 {
        self.heartbeat_interval() / 2 + 1
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn on_data<O: Observer>(
        &mut self,
        p: DataPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        let src = p.src;
        self.fold_peer_recv(src, &p.ack);
        self.scan_f2(src, &p.ack, false, now_us, observer, sink);

        let expected = self.fifo_next[src.index()];
        if p.seq < expected {
            self.metrics.duplicates += 1;
            observer.on_event(ProtocolEvent::Duplicate {
                src,
                seq: p.seq,
                now_us,
            });
            return;
        }
        if p.seq > expected {
            self.metrics.f1_detections += 1;
            observer.on_event(ProtocolEvent::F1Detected {
                src,
                expected,
                got: p.seq,
                now_us,
            });
            match self.config.retransmission {
                RetransmissionPolicy::Selective => {
                    let seq = p.seq;
                    if self.reorder.store(p) {
                        self.metrics.buffered_out_of_order += 1;
                        observer.on_event(ProtocolEvent::ReorderEnter { src, seq, now_us });
                    } else {
                        self.metrics.duplicates += 1;
                        observer.on_event(ProtocolEvent::Duplicate { src, seq, now_us });
                    }
                    self.send_ret(src, seq, now_us, observer, sink);
                }
                RetransmissionPolicy::GoBackN => {
                    self.metrics.discarded_out_of_order += 1;
                    observer.on_event(ProtocolEvent::OutOfOrderDiscarded {
                        src,
                        seq: p.seq,
                        now_us,
                    });
                    self.send_ret(src, p.seq, now_us, observer, sink);
                }
            }
            return;
        }
        self.accept_and_deliver(p, false, now_us, observer, sink);
        loop {
            let next = self.fifo_next[src.index()];
            match self.reorder.take_exact(src, next) {
                Some(q) => self.accept_and_deliver(q, true, now_us, observer, sink),
                None => break,
            }
        }
        if let Some((lseq, _)) = self.ret_outstanding[src.index()] {
            if self.fifo_next[src.index()] >= lseq {
                self.ret_outstanding[src.index()] = None;
            }
        }
        self.reorder.drop_below(src, self.fifo_next[src.index()]);
    }

    /// Acceptance *is* delivery in this core: the sender already
    /// guaranteed every causal dependency was delivered here before this
    /// PDU was transmitted (see the [module docs](self)).
    fn accept_and_deliver<O: Observer>(
        &mut self,
        p: DataPdu,
        from_reorder: bool,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        let src = p.src;
        let seq = p.seq;
        debug_assert_eq!(p.seq, self.fifo_next[src.index()], "FIFO acceptance");
        self.fifo_next[src.index()] = p.seq.next();
        self.frontier_version += 1;
        self.metrics.accepted += 1;
        if from_reorder {
            self.metrics.accepted_from_reorder += 1;
            observer.on_event(ProtocolEvent::ReorderExit { src, seq, now_us });
        }
        observer.on_event(ProtocolEvent::Accepted {
            src,
            seq,
            from_reorder,
            now_us,
        });
        self.metrics.delivered += 1;
        observer.on_event(ProtocolEvent::Delivered { src, seq, now_us });
        sink.accept(Action::Deliver(Delivery {
            src,
            seq,
            ack: p.ack,
            data: p.data,
        }));
    }

    fn on_ret<O: Observer>(
        &mut self,
        r: RetPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.fold_peer_recv(r.src, &r.ack);
        self.scan_f2(r.src, &r.ack, true, now_us, observer, sink);
        if r.lsrc != self.config.me {
            return;
        }
        let from = r.ack[self.config.me.index()];
        let to = match self.config.retransmission {
            RetransmissionPolicy::Selective => r.lseq,
            RetransmissionPolicy::GoBackN => self.fifo_next[self.config.me.index()],
        };
        let mut served = 0u64;
        for pdu in self.sl.range(from, to) {
            observer.on_event(ProtocolEvent::RetServed {
                to: r.src,
                seq: pdu.seq,
                now_us,
            });
            sink.accept(Action::Broadcast(Pdu::Data(pdu.clone())));
            served += 1;
        }
        self.metrics.retransmissions_sent += served;
        let requested = to.get().saturating_sub(from.get());
        if served < requested {
            let amount = requested - served;
            self.metrics.ret_unservable += amount;
            observer.on_event(ProtocolEvent::RetUnservable { amount, now_us });
        }
    }

    fn on_ack_only<O: Observer>(
        &mut self,
        a: AckOnlyPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.fold_peer_recv(a.src, &a.ack);
        // Lag detection (same two-half rule as the hybrid core): the
        // sender misses data we have, or its aggregated receipt knowledge
        // (`acked`) trails our frontier — the latter is how a sender whose
        // causal gate wedged on lost confirmations gets its refresher.
        for j in 0..self.config.n() {
            if a.ack[j] < self.fifo_next[j] || a.acked[j] < self.fifo_next[j] {
                self.peer_needs_update = true;
                break;
            }
        }
        self.scan_f2(a.src, &a.ack, true, now_us, observer, sink);
    }

    /// Monotonic fold of a peer's receipt frontier into its `peer_recv`
    /// row, then prune the send log below what everyone has.
    fn fold_peer_recv(&mut self, from: EntityId, ack: &[Seq]) {
        let n = self.config.n();
        let row = from.index() * n;
        let mut moved = false;
        for (k, &a) in ack.iter().enumerate().take(n) {
            let slot = &mut self.peer_recv[row + k];
            if a > *slot {
                *slot = a;
                moved = true;
            }
        }
        if moved {
            self.sl.prune_below(self.min_recv_of_me());
        }
    }

    /// Failure condition F2 over a frontier vector; sender-column rules
    /// as in [`crate::CoCore`].
    fn scan_f2<O: Observer>(
        &mut self,
        from: EntityId,
        ack: &[Seq],
        include_sender_column: bool,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        for (j, &confirmed) in ack.iter().enumerate().take(self.config.n()) {
            let source = EntityId::new(j as u32);
            if source == self.config.me || (source == from && !include_sender_column) {
                continue;
            }
            if confirmed > self.fifo_next[j] {
                self.metrics.f2_detections += 1;
                observer.on_event(ProtocolEvent::F2Detected {
                    src: source,
                    confirmed,
                    via: from,
                    now_us,
                });
                self.send_ret(source, confirmed, now_us, observer, sink);
            }
        }
    }

    fn send_ret<O: Observer>(
        &mut self,
        source: EntityId,
        lseq: Seq,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        debug_assert_ne!(source, self.config.me);
        let lseq = match self.reorder.buffered(source).next() {
            Some(first_buffered) => lseq.min(first_buffered),
            None => lseq,
        };
        if lseq <= self.fifo_next[source.index()] {
            return;
        }
        let slot = &mut self.ret_outstanding[source.index()];
        if let Some((prev_lseq, when)) = *slot {
            let fresh = now_us.saturating_sub(when) < self.config.ret_retry_us;
            if fresh && lseq <= prev_lseq {
                self.metrics.ret_suppressed += 1;
                observer.on_event(ProtocolEvent::RetSuppressed {
                    src: source,
                    lseq,
                    now_us,
                });
                return;
            }
        }
        *slot = Some((lseq, now_us));
        let ret = RetPdu {
            cid: self.config.cluster.cid,
            src: self.config.me,
            lsrc: source,
            lseq,
            ack: self.fifo_next.clone(),
            buf: self.free_buf(),
        };
        self.metrics.ret_sent += 1;
        observer.on_event(ProtocolEvent::RetSent {
            src: source,
            lseq,
            now_us,
        });
        sink.accept(Action::Broadcast(Pdu::Ret(ret)));
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    fn flow_open(&self) -> bool {
        let me = self.config.me.index();
        matches!(
            flow_decision(
                self.fifo_next[me],
                self.min_recv_of_me(),
                self.config.window,
                self.min_buf(),
                self.config.pdu_buf_units,
                self.config.n(),
            ),
            FlowDecision::Open
        )
    }

    fn gate_open(&self) -> bool {
        self.causal_gate_open() && self.flow_open()
    }

    fn broadcast_data<O: Observer>(
        &mut self,
        data: Bytes,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) -> Seq {
        let me = self.config.me;
        let seq = self.fifo_next[me.index()];
        let pdu = DataPdu {
            cid: self.config.cluster.cid,
            src: me,
            seq,
            ack: self.fifo_next.clone(),
            buf: self.free_buf(),
            data,
        };
        self.fifo_next[me.index()] = seq.next();
        self.frontier_version += 1;
        self.sl.record(pdu.clone());
        self.metrics.data_sent += 1;
        observer.on_event(ProtocolEvent::DataSent {
            src: me,
            seq,
            now_us,
        });
        sink.accept(Action::Broadcast(Pdu::Data(pdu.clone())));
        // Self-delivery on send: our own message's dependencies are, by
        // definition, already delivered locally.
        self.metrics.accepted += 1;
        observer.on_event(ProtocolEvent::Accepted {
            src: me,
            seq,
            from_reorder: false,
            now_us,
        });
        self.metrics.delivered += 1;
        observer.on_event(ProtocolEvent::Delivered {
            src: me,
            seq,
            now_us,
        });
        sink.accept(Action::Deliver(Delivery {
            src: me,
            seq,
            ack: pdu.ack,
            data: pdu.data,
        }));
        self.mark_advertised(now_us);
        seq
    }

    fn try_flush_pending<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        if self.pending.is_empty() || !self.gate_open() {
            return;
        }
        observer.on_event(ProtocolEvent::FlowOpened { now_us });
        while !self.pending.is_empty() && self.gate_open() {
            let data = self.pending.pop_front().expect("checked non-empty");
            self.broadcast_data(data, now_us, observer, sink);
        }
    }

    fn unadvertised(&self) -> bool {
        self.advertised != self.frontier_version
    }

    fn mark_advertised(&mut self, now_us: u64) {
        self.advertised = self.frontier_version;
        self.heard_since_send.fill(false);
        self.last_send_us = now_us;
    }

    fn maybe_confirm<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        if self.peer_needs_update
            && now_us.saturating_sub(self.last_send_us) >= self.reply_pace_us()
        {
            self.peer_needs_update = false;
            self.send_ack_only(now_us, observer, sink);
            return;
        }
        if !self.unadvertised() {
            return;
        }
        let should = match self.config.deferral {
            DeferralPolicy::Immediate => true,
            DeferralPolicy::Deferred { .. } => self
                .config
                .cluster
                .peers(self.config.me)
                .all(|p| self.heard_since_send[p.index()]),
        };
        if should {
            self.send_ack_only(now_us, observer, sink);
        }
    }

    fn send_ack_only<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        // Wire mapping: `ack` and `packed` are the received(= delivery)
        // frontier; `acked[k]` is the lowest receipt knowledge of `E_k`
        // across peers — peers use it to spot that our gate is wedged on
        // confirmations we never got, and reply with a refresher.
        let n = self.config.n();
        let acked = (0..n).map(|k| self.min_recv_of(k)).collect();
        let pdu = AckOnlyPdu {
            cid: self.config.cluster.cid,
            src: self.config.me,
            ack: self.fifo_next.clone(),
            packed: self.fifo_next.clone(),
            acked,
            buf: self.free_buf(),
        };
        self.metrics.ack_only_sent += 1;
        observer.on_event(ProtocolEvent::AckOnlySent { now_us });
        sink.accept(Action::Broadcast(Pdu::AckOnly(pdu)));
        self.mark_advertised(now_us);
    }

    fn note_peak(&mut self) {
        self.peak_held_pdus = self.peak_held_pdus.max(self.held());
    }
}

impl DeliveryCore for SenderCore {
    type State = SenderState;

    const NAME: &'static str = "sender";
    const GUARANTEE: Guarantee = Guarantee::Causal;

    fn new(config: Config) -> Result<Self, ConfigError> {
        let n = config.n();
        Ok(SenderCore {
            fifo_next: vec![Seq::FIRST; n],
            peer_recv: vec![Seq::FIRST; n * n],
            reorder: ReorderBuffer::new(n),
            sl: SendLog::new(),
            buf_known: vec![config.buffer_units; n],
            pending: VecDeque::new(),
            heard_since_send: vec![false; n],
            frontier_version: 0,
            advertised: 0,
            ret_outstanding: vec![None; n],
            peer_needs_update: false,
            last_send_us: 0,
            peak_held_pdus: 0,
            metrics: Metrics::default(),
            config,
        })
    }

    fn restore(config: Config, state: Self::State) -> Result<Self, ConfigError> {
        let mut e = <SenderCore as DeliveryCore>::new(config)?;
        let n = e.config.n();
        assert_eq!(
            state.fifo_next.len(),
            n,
            "state/config cluster size mismatch"
        );
        assert_eq!(state.peer_recv.len(), n * n, "peer_recv dimension mismatch");
        assert_eq!(state.buf_known.len(), n, "buf_known length mismatch");
        assert_eq!(state.reorder.len(), n, "reorder source count mismatch");
        assert_eq!(state.heard_since_send.len(), n, "heard flags mismatch");
        assert_eq!(state.ret_outstanding.len(), n, "RET records mismatch");
        e.fifo_next = state.fifo_next;
        e.peer_recv = state.peer_recv;
        for buffer in state.reorder {
            for pdu in buffer {
                e.reorder.store(pdu);
            }
        }
        for pdu in state.send_log {
            e.sl.record(pdu);
        }
        e.buf_known = state.buf_known;
        e.pending = state.pending.into();
        e.heard_since_send = state.heard_since_send;
        e.ret_outstanding = state.ret_outstanding;
        e.peer_needs_update = state.peer_needs_update;
        e.last_send_us = state.last_send_us;
        e.peak_held_pdus = state.peak_held_pdus;
        e.metrics = state.metrics;
        // Owe the cluster a fresh advertisement.
        e.frontier_version = 1;
        e.advertised = 0;
        Ok(e)
    }

    fn export_state(&self) -> Self::State {
        let n = self.config.n();
        SenderState {
            fifo_next: self.fifo_next.clone(),
            peer_recv: self.peer_recv.clone(),
            reorder: (0..n)
                .map(|j| {
                    self.reorder
                        .pdus(EntityId::new(j as u32))
                        .cloned()
                        .collect()
                })
                .collect(),
            send_log: self.sl.iter().cloned().collect(),
            buf_known: self.buf_known.clone(),
            pending: self.pending.iter().cloned().collect(),
            heard_since_send: self.heard_since_send.clone(),
            ret_outstanding: self.ret_outstanding.clone(),
            peer_needs_update: self.peer_needs_update,
            last_send_us: self.last_send_us,
            peak_held_pdus: self.peak_held_pdus,
            metrics: self.metrics,
        }
    }

    fn config(&self) -> &Config {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn state_bytes(&self) -> usize {
        let n = self.config.n();
        let seq = std::mem::size_of::<Seq>();
        // One O(n²) receipt-knowledge matrix plus O(n) vectors.
        let knowledge = (n * n + n) * seq;
        let vectors =
            n * std::mem::size_of::<u32>() + n + n * std::mem::size_of::<Option<(Seq, u64)>>();
        let buffered: usize = self
            .sl
            .iter()
            .chain((0..n).flat_map(|j| self.reorder.pdus(EntityId::new(j as u32))))
            .map(|p| pdu_bytes(n, p.data.len()))
            .sum();
        knowledge + vectors + buffered
    }

    fn held_pdus(&self) -> usize {
        self.held()
    }

    fn peak_held_pdus(&self) -> usize {
        self.peak_held_pdus
    }

    fn pending_submits(&self) -> usize {
        self.pending.len()
    }

    fn is_quiescent(&self) -> bool {
        self.held() == 0 && self.pending.is_empty()
    }

    fn is_fully_stable(&self) -> bool {
        let me = self.config.me.index();
        let n = self.config.n();
        self.is_quiescent()
            && (0..n)
                .filter(|&j| j != me)
                .all(|j| (0..n).all(|k| self.recv(j, k) >= self.fifo_next[k]))
    }

    fn free_buffer_units(&self) -> u32 {
        self.free_buf()
    }

    fn submit<O: Observer>(
        &mut self,
        data: Bytes,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) -> Result<SubmitOutcome, ProtocolError> {
        if data.len() > self.config.max_payload {
            return Err(ProtocolError::PayloadTooLarge {
                size: data.len(),
                max: self.config.max_payload,
            });
        }
        if self.pending.is_empty() && self.gate_open() {
            observer.on_event(ProtocolEvent::Submitted { now_us });
            let seq = self.broadcast_data(data, now_us, observer, sink);
            Ok(SubmitOutcome::Sent(seq))
        } else {
            if self.pending.len() >= MAX_QUEUED_SUBMITS {
                return Err(ProtocolError::SubmitQueueFull {
                    limit: MAX_QUEUED_SUBMITS,
                });
            }
            observer.on_event(ProtocolEvent::Submitted { now_us });
            observer.on_event(ProtocolEvent::FlowClosed { now_us });
            let me = self.config.me.index();
            observer.on_event(ProtocolEvent::FlowBlocked {
                outstanding: self.fifo_next[me].get() - self.min_recv_of_me().get(),
                limit: flow_limit(
                    self.config.window,
                    self.min_buf(),
                    self.config.pdu_buf_units,
                    self.config.n(),
                ),
                now_us,
            });
            self.pending.push_back(data);
            self.metrics.flow_blocked += 1;
            Ok(SubmitOutcome::Queued)
        }
    }

    fn on_validated_pdu<O: Observer>(
        &mut self,
        pdu: Pdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        let from = pdu.src();
        self.heard_since_send[from.index()] = true;
        self.buf_known[from.index()] = pdu.buf();
        match pdu {
            Pdu::Data(p) => self.on_data(p, now_us, observer, sink),
            Pdu::Ret(r) => self.on_ret(r, now_us, observer, sink),
            Pdu::AckOnly(a) => self.on_ack_only(a, now_us, observer, sink),
        }
        self.try_flush_pending(now_us, observer, sink);
    }

    fn end_batch<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.maybe_confirm(now_us, observer, sink);
        self.note_peak();
    }

    fn on_tick<O: Observer>(&mut self, now_us: u64, observer: &mut O, sink: &mut impl ActionSink) {
        let timeout = match self.config.deferral {
            DeferralPolicy::Immediate => 0,
            DeferralPolicy::Deferred { timeout_us } => timeout_us,
        };
        if self.peer_needs_update
            && now_us.saturating_sub(self.last_send_us) >= self.reply_pace_us()
        {
            self.peer_needs_update = false;
            self.send_ack_only(now_us, observer, sink);
        } else if (self.unadvertised() && now_us.saturating_sub(self.last_send_us) >= timeout)
            || (!self.is_fully_stable()
                && now_us.saturating_sub(self.last_send_us) >= self.heartbeat_interval())
        {
            self.send_ack_only(now_us, observer, sink);
        }
        for j in 0..self.config.n() {
            let source = EntityId::new(j as u32);
            let Some((lseq, when)) = self.ret_outstanding[j] else {
                continue;
            };
            if self.fifo_next[j] >= lseq {
                self.ret_outstanding[j] = None;
                continue;
            }
            if now_us.saturating_sub(when) >= self.config.ret_retry_us {
                self.ret_outstanding[j] = None;
                self.send_ret(source, lseq, now_us, observer, sink);
            }
        }
        // The gate can open from a tick alone only via state restored or
        // timers; re-check so queued submissions never stall on a missed
        // edge.
        self.try_flush_pending(now_us, observer, sink);
        self.note_peak();
    }

    fn next_deadline(&self, _now_us: u64) -> Option<u64> {
        let mut deadline: Option<u64> = None;
        let mut consider = |t: u64| {
            deadline = Some(deadline.map_or(t, |d: u64| d.min(t)));
        };
        if self.peer_needs_update {
            consider(self.last_send_us.saturating_add(self.reply_pace_us()));
        }
        if self.unadvertised() {
            let timeout = match self.config.deferral {
                DeferralPolicy::Immediate => 0,
                DeferralPolicy::Deferred { timeout_us } => timeout_us,
            };
            consider(self.last_send_us.saturating_add(timeout));
        } else if !self.is_fully_stable() {
            consider(self.last_send_us.saturating_add(self.heartbeat_interval()));
        }
        for j in 0..self.config.n() {
            if let Some((lseq, when)) = self.ret_outstanding[j] {
                if self.fifo_next[j] < lseq {
                    consider(when.saturating_add(self.config.ret_retry_us));
                }
            }
        }
        deadline
    }
}
