//! Protocol counters, exposed for the experiments and for observability.

/// Event counters maintained by an [`crate::Entity`]. All counters are
/// cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Data PDUs broadcast for fresh application payloads.
    pub data_sent: u64,
    /// Data PDUs rebroadcast in response to `RET` requests.
    pub retransmissions_sent: u64,
    /// `RET` PDUs broadcast.
    pub ret_sent: u64,
    /// Confirmation-only PDUs broadcast.
    pub ack_only_sent: u64,
    /// Data PDUs accepted (ACC condition held).
    pub accepted: u64,
    /// Data PDUs accepted out of the reorder buffer after gap repair.
    pub accepted_from_reorder: u64,
    /// Messages delivered to the application (reached `ARL`).
    pub delivered: u64,
    /// Data PDUs pre-acknowledged (moved `RRL → PRL`).
    pub pre_acknowledged: u64,
    /// Gaps detected by failure condition F1 (sequence gap on receipt).
    pub f1_detections: u64,
    /// Gaps detected by failure condition F2 (ack-vector evidence).
    pub f2_detections: u64,
    /// Duplicate data PDUs ignored (already accepted).
    pub duplicates: u64,
    /// Out-of-order data PDUs stored in the reorder buffer.
    pub buffered_out_of_order: u64,
    /// Out-of-order data PDUs discarded (go-back-n policy).
    pub discarded_out_of_order: u64,
    /// Payloads queued because the flow condition was closed.
    pub flow_blocked: u64,
    /// `RET` requests suppressed because one is already outstanding.
    pub ret_suppressed: u64,
    /// PDUs retransmitted but missing from the send log (already pruned).
    pub ret_unservable: u64,
}

impl Metrics {
    /// Total PDUs this entity put on the wire (broadcast once each).
    pub fn pdus_sent(&self) -> u64 {
        self.data_sent + self.retransmissions_sent + self.ret_sent + self.ack_only_sent
    }

    /// Total loss detections by either failure condition.
    pub fn loss_detections(&self) -> u64 {
        self.f1_detections + self.f2_detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let m = Metrics {
            data_sent: 5,
            retransmissions_sent: 2,
            ret_sent: 1,
            ack_only_sent: 3,
            f1_detections: 4,
            f2_detections: 6,
            ..Metrics::default()
        };
        assert_eq!(m.pdus_sent(), 11);
        assert_eq!(m.loss_detections(), 10);
    }

    #[test]
    fn default_is_zero() {
        let m = Metrics::default();
        assert_eq!(m.pdus_sent(), 0);
        assert_eq!(m.delivered, 0);
    }
}
