//! Protocol counters, exposed for the experiments and for observability.

use co_observe::Counters;

/// Event counters maintained by an [`crate::Entity`]. All counters are
/// cumulative since construction.
///
/// Read individual counters through the accessor methods, or take a
/// [`Metrics::snapshot`] to get all of them at once as a plain
/// [`Counters`] value (the exchange type shared with the `co-observe`
/// fold — the event stream reconstructs the snapshot exactly). The struct
/// is `#[non_exhaustive]` with private fields so future counters are not
/// breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Data PDUs broadcast for fresh application payloads.
    pub(crate) data_sent: u64,
    /// Data PDUs rebroadcast in response to `RET` requests.
    pub(crate) retransmissions_sent: u64,
    /// `RET` PDUs broadcast.
    pub(crate) ret_sent: u64,
    /// Confirmation-only PDUs broadcast.
    pub(crate) ack_only_sent: u64,
    /// Data PDUs accepted (ACC condition held).
    pub(crate) accepted: u64,
    /// Data PDUs accepted out of the reorder buffer after gap repair.
    pub(crate) accepted_from_reorder: u64,
    /// Messages delivered to the application (reached `ARL`).
    pub(crate) delivered: u64,
    /// Data PDUs pre-acknowledged (moved `RRL → PRL`).
    pub(crate) pre_acknowledged: u64,
    /// Gaps detected by failure condition F1 (sequence gap on receipt).
    pub(crate) f1_detections: u64,
    /// Gaps detected by failure condition F2 (ack-vector evidence).
    pub(crate) f2_detections: u64,
    /// Duplicate data PDUs ignored (already accepted).
    pub(crate) duplicates: u64,
    /// Out-of-order data PDUs stored in the reorder buffer.
    pub(crate) buffered_out_of_order: u64,
    /// Out-of-order data PDUs discarded (go-back-n policy).
    pub(crate) discarded_out_of_order: u64,
    /// Payloads queued because the flow condition was closed.
    pub(crate) flow_blocked: u64,
    /// `RET` requests suppressed because one is already outstanding.
    pub(crate) ret_suppressed: u64,
    /// PDUs retransmitted but missing from the send log (already pruned).
    pub(crate) ret_unservable: u64,
}

macro_rules! metrics_accessors {
    ($($(#[$doc:meta])+ $name:ident;)+) => {
        impl Metrics {
            $(
                $(#[$doc])+
                pub fn $name(&self) -> u64 {
                    self.$name
                }
            )+

            /// All counters at once, as the exchange type shared with the
            /// `co-observe` event fold.
            pub fn snapshot(&self) -> Counters {
                Counters {
                    $($name: self.$name,)+
                }
            }
        }
    };
}

metrics_accessors! {
    /// Data PDUs broadcast for fresh application payloads.
    data_sent;
    /// Data PDUs rebroadcast in response to `RET` requests.
    retransmissions_sent;
    /// `RET` PDUs broadcast.
    ret_sent;
    /// Confirmation-only PDUs broadcast.
    ack_only_sent;
    /// Data PDUs accepted (ACC condition held).
    accepted;
    /// Data PDUs accepted out of the reorder buffer after gap repair.
    accepted_from_reorder;
    /// Messages delivered to the application (reached `ARL`).
    delivered;
    /// Data PDUs pre-acknowledged (moved `RRL → PRL`).
    pre_acknowledged;
    /// Gaps detected by failure condition F1 (sequence gap on receipt).
    f1_detections;
    /// Gaps detected by failure condition F2 (ack-vector evidence).
    f2_detections;
    /// Duplicate data PDUs ignored (already accepted).
    duplicates;
    /// Out-of-order data PDUs stored in the reorder buffer.
    buffered_out_of_order;
    /// Out-of-order data PDUs discarded (go-back-n policy).
    discarded_out_of_order;
    /// Payloads queued because the flow condition was closed.
    flow_blocked;
    /// `RET` requests suppressed because one is already outstanding.
    ret_suppressed;
    /// PDUs retransmitted but missing from the send log (already pruned).
    ret_unservable;
}

impl Metrics {
    /// Total PDUs this entity put on the wire (broadcast once each).
    pub fn pdus_sent(&self) -> u64 {
        self.data_sent + self.retransmissions_sent + self.ret_sent + self.ack_only_sent
    }

    /// Total loss detections by either failure condition.
    pub fn loss_detections(&self) -> u64 {
        self.f1_detections + self.f2_detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let m = Metrics {
            data_sent: 5,
            retransmissions_sent: 2,
            ret_sent: 1,
            ack_only_sent: 3,
            f1_detections: 4,
            f2_detections: 6,
            ..Metrics::default()
        };
        assert_eq!(m.pdus_sent(), 11);
        assert_eq!(m.loss_detections(), 10);
    }

    #[test]
    fn default_is_zero() {
        let m = Metrics::default();
        assert_eq!(m.pdus_sent(), 0);
        assert_eq!(m.delivered(), 0);
    }

    #[test]
    fn snapshot_mirrors_every_counter() {
        let m = Metrics {
            data_sent: 1,
            retransmissions_sent: 2,
            ret_sent: 3,
            ack_only_sent: 4,
            accepted: 5,
            accepted_from_reorder: 6,
            delivered: 7,
            pre_acknowledged: 8,
            f1_detections: 9,
            f2_detections: 10,
            duplicates: 11,
            buffered_out_of_order: 12,
            discarded_out_of_order: 13,
            flow_blocked: 14,
            ret_suppressed: 15,
            ret_unservable: 16,
        };
        let s = m.snapshot();
        for (i, (_, v)) in s.entries().iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
        assert_eq!(s.pdus_sent(), m.pdus_sent());
        assert_eq!(m.accepted(), 5);
        assert_eq!(m.accepted_from_reorder(), 6);
    }
}
