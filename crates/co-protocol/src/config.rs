//! Protocol configuration (the paper's constants `W`, `H`, buffer size,
//! deferred-confirmation policy) and its builder.

use causal_order::{ClusterSpec, EntityId, EntityIdError};

/// When an entity emits confirmation-only PDUs (§4.2's *deferred
/// confirmation* and §5's discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferralPolicy {
    /// Confirm every accepted data PDU right away. This is the naive scheme
    /// the paper rejects ("if `E_i` transmits a PDU each time `E_i` receives
    /// a PDU, O(n²) PDUs are transmitted").
    Immediate,
    /// The paper's scheme: transmit a confirmation only after receiving at
    /// least one PDU from every other entity since the last own
    /// transmission, or after `timeout_us` microseconds — "deferred
    /// confirmation", giving O(n) PDUs.
    Deferred {
        /// The "some time units" fallback, in microseconds.
        timeout_us: u64,
    },
}

impl DeferralPolicy {
    /// The paper's deferred scheme with a 5 ms fallback.
    pub const fn deferred_default() -> Self {
        DeferralPolicy::Deferred { timeout_us: 5_000 }
    }
}

/// How lost PDUs are retransmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetransmissionPolicy {
    /// The paper's scheme: only the PDUs reported lost are rebroadcast, and
    /// receivers keep out-of-order PDUs while the gap is repaired
    /// ("selective retransmission").
    Selective,
    /// The go-back-n scheme of the TO protocols the paper compares against
    /// (§5): the source rebroadcasts *everything* from the first lost PDU
    /// onward, and receivers discard out-of-order PDUs instead of buffering
    /// them. Implemented as an ablation baseline.
    GoBackN,
}

/// Full configuration of one protocol entity.
///
/// Construct through [`Config::builder`]; all parameters have
/// paper-faithful defaults and are validated at
/// [`ConfigBuilder::build`]. The struct is `#[non_exhaustive]`: fields
/// stay readable, but direct literal construction is reserved to the
/// builder so configurations can never skip validation (and new knobs
/// are not breaking changes).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// The cluster this entity belongs to.
    pub cluster: ClusterSpec,
    /// This entity's identity within the cluster.
    pub me: EntityId,
    /// Window size `W` of the flow condition.
    pub window: u64,
    /// Buffer units one PDU occupies (`H` in the flow condition).
    pub pdu_buf_units: u32,
    /// Total receive-buffer units (`BUF` is advertised as the free part).
    pub buffer_units: u32,
    /// Confirmation policy.
    pub deferral: DeferralPolicy,
    /// Retransmission policy.
    pub retransmission: RetransmissionPolicy,
    /// Whether `RET` and `AckOnly` PDUs update the `AL` matrix (their `ACK`
    /// field is the sender's genuine `REQ` vector; see DESIGN.md).
    pub control_updates_al: bool,
    /// Minimum interval between repeated `RET` requests for the same gap,
    /// in microseconds.
    pub ret_retry_us: u64,
    /// Largest accepted application payload, in bytes.
    pub max_payload: usize,
}

impl Config {
    /// Starts building a configuration for entity `me` in a cluster of `n`
    /// entities identified by `cid`.
    pub fn builder(cid: u32, n: usize, me: EntityId) -> ConfigBuilder {
        ConfigBuilder {
            cid,
            n,
            me,
            window: 16,
            pdu_buf_units: 1,
            buffer_units: 4096,
            deferral: DeferralPolicy::deferred_default(),
            retransmission: RetransmissionPolicy::Selective,
            control_updates_al: true,
            ret_retry_us: 10_000,
            max_payload: 64 * 1024,
        }
    }

    /// Cluster size `n`.
    pub fn n(&self) -> usize {
        self.cluster.n
    }
}

/// Builder for [`Config`]; see [`Config::builder`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    cid: u32,
    n: usize,
    me: EntityId,
    window: u64,
    pdu_buf_units: u32,
    buffer_units: u32,
    deferral: DeferralPolicy,
    retransmission: RetransmissionPolicy,
    control_updates_al: bool,
    ret_retry_us: u64,
    max_payload: usize,
}

impl ConfigBuilder {
    /// Sets the flow-condition window `W`.
    pub fn window(&mut self, w: u64) -> &mut Self {
        self.window = w;
        self
    }

    /// Sets `H`, the buffer units one PDU occupies.
    pub fn pdu_buf_units(&mut self, h: u32) -> &mut Self {
        self.pdu_buf_units = h;
        self
    }

    /// Sets the total receive-buffer units.
    pub fn buffer_units(&mut self, units: u32) -> &mut Self {
        self.buffer_units = units;
        self
    }

    /// Sets the confirmation policy.
    pub fn deferral(&mut self, policy: DeferralPolicy) -> &mut Self {
        self.deferral = policy;
        self
    }

    /// Sets the retransmission policy.
    pub fn retransmission(&mut self, policy: RetransmissionPolicy) -> &mut Self {
        self.retransmission = policy;
        self
    }

    /// Sets whether control PDUs update the `AL` matrix.
    pub fn control_updates_al(&mut self, yes: bool) -> &mut Self {
        self.control_updates_al = yes;
        self
    }

    /// Sets the minimum interval between repeated `RET`s for one gap.
    pub fn ret_retry_us(&mut self, us: u64) -> &mut Self {
        self.ret_retry_us = us;
        self
    }

    /// Sets the largest accepted application payload.
    pub fn max_payload(&mut self, bytes: usize) -> &mut Self {
        self.max_payload = bytes;
        self
    }

    /// Validates and produces the [`Config`].
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Cluster`] if `n < 2` or `me` is out of range;
    /// * [`ConfigError::ZeroWindow`] if `W == 0`;
    /// * [`ConfigError::ZeroPduUnits`] if `H == 0`;
    /// * [`ConfigError::BufferTooSmall`] if fewer than `H` buffer units;
    /// * [`ConfigError::ZeroTimerPeriod`] if the RET retry interval or a
    ///   deferred-confirmation timeout is zero (a zero period would make
    ///   the corresponding timer fire on every tick).
    pub fn build(&self) -> Result<Config, ConfigError> {
        let cluster = ClusterSpec::new(self.cid, self.n).map_err(ConfigError::Cluster)?;
        cluster.validate(self.me).map_err(ConfigError::Cluster)?;
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.pdu_buf_units == 0 {
            return Err(ConfigError::ZeroPduUnits);
        }
        if self.buffer_units < self.pdu_buf_units {
            return Err(ConfigError::BufferTooSmall {
                units: self.buffer_units,
                per_pdu: self.pdu_buf_units,
            });
        }
        if self.ret_retry_us == 0 {
            return Err(ConfigError::ZeroTimerPeriod { timer: "ret_retry" });
        }
        if self.deferral == (DeferralPolicy::Deferred { timeout_us: 0 }) {
            return Err(ConfigError::ZeroTimerPeriod { timer: "deferral" });
        }
        Ok(Config {
            cluster,
            me: self.me,
            window: self.window,
            pdu_buf_units: self.pdu_buf_units,
            buffer_units: self.buffer_units,
            deferral: self.deferral,
            retransmission: self.retransmission,
            control_updates_al: self.control_updates_al,
            ret_retry_us: self.ret_retry_us,
            max_payload: self.max_payload,
        })
    }
}

/// Error produced when validating a [`Config`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Invalid cluster shape or entity id.
    Cluster(EntityIdError),
    /// The flow-condition window `W` must be positive.
    ZeroWindow,
    /// `H` (buffer units per PDU) must be positive.
    ZeroPduUnits,
    /// The buffer cannot hold even a single PDU.
    BufferTooSmall {
        /// Configured total units.
        units: u32,
        /// Units required per PDU.
        per_pdu: u32,
    },
    /// A timer period is zero (the timer would fire on every tick).
    ZeroTimerPeriod {
        /// Which timer: `"ret_retry"` or `"deferral"`.
        timer: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Cluster(e) => write!(f, "invalid cluster: {e}"),
            ConfigError::ZeroWindow => write!(f, "window size W must be positive"),
            ConfigError::ZeroPduUnits => write!(f, "pdu buffer units H must be positive"),
            ConfigError::BufferTooSmall { units, per_pdu } => {
                write!(
                    f,
                    "buffer of {units} units cannot hold one {per_pdu}-unit pdu"
                )
            }
            ConfigError::ZeroTimerPeriod { timer } => {
                write!(f, "{timer} timer period must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let c = Config::builder(7, 3, EntityId::new(1)).build().unwrap();
        assert_eq!(c.cluster.cid, 7);
        assert_eq!(c.n(), 3);
        assert_eq!(c.me, EntityId::new(1));
        assert_eq!(c.window, 16);
        assert_eq!(c.pdu_buf_units, 1);
        assert_eq!(c.retransmission, RetransmissionPolicy::Selective);
        assert!(c.control_updates_al);
        assert_eq!(c.deferral, DeferralPolicy::Deferred { timeout_us: 5_000 });
    }

    #[test]
    fn builder_overrides_apply() {
        let c = Config::builder(0, 4, EntityId::new(0))
            .window(2)
            .pdu_buf_units(3)
            .buffer_units(30)
            .deferral(DeferralPolicy::Immediate)
            .retransmission(RetransmissionPolicy::GoBackN)
            .control_updates_al(false)
            .ret_retry_us(99)
            .max_payload(128)
            .build()
            .unwrap();
        assert_eq!(c.window, 2);
        assert_eq!(c.pdu_buf_units, 3);
        assert_eq!(c.buffer_units, 30);
        assert_eq!(c.deferral, DeferralPolicy::Immediate);
        assert_eq!(c.retransmission, RetransmissionPolicy::GoBackN);
        assert!(!c.control_updates_al);
        assert_eq!(c.ret_retry_us, 99);
        assert_eq!(c.max_payload, 128);
    }

    #[test]
    fn invalid_cluster_rejected() {
        assert!(matches!(
            Config::builder(0, 1, EntityId::new(0)).build(),
            Err(ConfigError::Cluster(_))
        ));
        assert!(matches!(
            Config::builder(0, 3, EntityId::new(3)).build(),
            Err(ConfigError::Cluster(_))
        ));
    }

    #[test]
    fn zero_window_rejected() {
        assert_eq!(
            Config::builder(0, 2, EntityId::new(0)).window(0).build(),
            Err(ConfigError::ZeroWindow)
        );
    }

    #[test]
    fn zero_pdu_units_rejected() {
        assert_eq!(
            Config::builder(0, 2, EntityId::new(0))
                .pdu_buf_units(0)
                .build(),
            Err(ConfigError::ZeroPduUnits)
        );
    }

    #[test]
    fn tiny_buffer_rejected() {
        assert_eq!(
            Config::builder(0, 2, EntityId::new(0))
                .pdu_buf_units(8)
                .buffer_units(4)
                .build(),
            Err(ConfigError::BufferTooSmall {
                units: 4,
                per_pdu: 8
            })
        );
    }

    #[test]
    fn error_display() {
        let e = ConfigError::BufferTooSmall {
            units: 4,
            per_pdu: 8,
        };
        assert_eq!(
            e.to_string(),
            "buffer of 4 units cannot hold one 8-unit pdu"
        );
        assert!(ConfigError::ZeroWindow.to_string().contains("positive"));
    }
}
