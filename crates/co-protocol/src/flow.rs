//! The flow condition (§4.2).
//!
//! `E_i` may broadcast its next PDU only while
//!
//! ```text
//! minAL_i ≤ SEQ < minAL_i + min(W, minBUF / (H · 2n))
//! ```
//!
//! `minAL_i` is the oldest of `E_i`'s own PDUs not yet known accepted
//! everywhere — so the first bound is a classic send window of `W` PDUs.
//! The second bound shares the slowest receiver's advertised free buffer
//! (`minBUF`) across the cluster: every entity may have up to `2n` windows'
//! worth of traffic outstanding (`n` entities × 2 confirmation rounds,
//! §5), each PDU costing `H` units.

use causal_order::Seq;

/// The effective send-window size: `min(W, minBUF / (H·2n))`.
///
/// # Panics
///
/// Panics if `h` or `n` is zero (rejected at configuration time).
pub fn flow_limit(window: u64, min_buf: u32, h: u32, n: usize) -> u64 {
    assert!(h > 0 && n > 0, "validated by Config");
    let buffer_share = u64::from(min_buf) / (u64::from(h) * 2 * n as u64);
    window.min(buffer_share)
}

/// Outcome of evaluating the flow condition for the next sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDecision {
    /// `SEQ` is inside the window — transmission may proceed.
    Open,
    /// The window is exhausted: `SEQ - minAL_i` PDUs are already
    /// unconfirmed.
    WindowFull {
        /// Current effective limit.
        limit: u64,
    },
    /// The buffer share is zero — the slowest receiver advertises too
    /// little free buffer for any transmission.
    Starved,
}

/// Evaluates the flow condition for sending a PDU with sequence number
/// `seq` (which is always `≥ minAL_i`; sequence numbers only grow).
pub fn flow_decision(
    seq: Seq,
    min_al_self: Seq,
    window: u64,
    min_buf: u32,
    h: u32,
    n: usize,
) -> FlowDecision {
    let limit = flow_limit(window, min_buf, h, n);
    if limit == 0 {
        return FlowDecision::Starved;
    }
    debug_assert!(seq >= min_al_self, "own SEQ below own minAL");
    let outstanding = seq.get() - min_al_self.get();
    if outstanding < limit {
        FlowDecision::Open
    } else {
        FlowDecision::WindowFull { limit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_is_min_of_window_and_buffer_share() {
        // W = 16, minBUF = 100, H = 1, n = 5 → share = 100/10 = 10.
        assert_eq!(flow_limit(16, 100, 1, 5), 10);
        // Large buffer → window binds.
        assert_eq!(flow_limit(16, 10_000, 1, 5), 16);
    }

    #[test]
    fn limit_scales_with_h() {
        assert_eq!(flow_limit(64, 120, 3, 2), 10); // 120 / (3·4)
    }

    #[test]
    fn open_when_nothing_outstanding() {
        assert_eq!(
            flow_decision(Seq::new(1), Seq::new(1), 4, 1000, 1, 2),
            FlowDecision::Open
        );
    }

    #[test]
    fn window_fills_after_w_unconfirmed() {
        // minAL = 1, seq = 5, W = 4 → 4 outstanding → full.
        assert_eq!(
            flow_decision(Seq::new(5), Seq::new(1), 4, 1000, 1, 2),
            FlowDecision::WindowFull { limit: 4 }
        );
        // seq = 4 → 3 outstanding → open.
        assert_eq!(
            flow_decision(Seq::new(4), Seq::new(1), 4, 1000, 1, 2),
            FlowDecision::Open
        );
    }

    #[test]
    fn starved_when_buffer_share_zero() {
        // minBUF = 3, H = 1, n = 2 → share = 3/4 = 0.
        assert_eq!(
            flow_decision(Seq::new(1), Seq::new(1), 4, 3, 1, 2),
            FlowDecision::Starved
        );
    }

    #[test]
    fn window_reopens_as_min_al_advances() {
        let w = 4;
        // 4 outstanding at minAL = 1 → full; confirmations raise minAL to 3.
        assert!(matches!(
            flow_decision(Seq::new(5), Seq::new(1), w, 1000, 1, 2),
            FlowDecision::WindowFull { .. }
        ));
        assert_eq!(
            flow_decision(Seq::new(5), Seq::new(3), w, 1000, 1, 2),
            FlowDecision::Open
        );
    }
}
