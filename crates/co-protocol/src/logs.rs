//! The sending log `SL` and per-source receipt logs `RRL` (§2.2, §4.2).

use causal_order::{EntityId, Seq};
use co_wire::DataPdu;
use std::collections::VecDeque;

/// The sending log `SL_i`: every data PDU this entity broadcast, kept
/// **bit-identical** for selective retransmission (Lemma 4.2 requires
/// retransmitted PDUs to carry their original `ACK` vectors).
///
/// Entries are pruned once the entity has *acknowledged* its own PDU
/// (`p.SEQ < minPAL_i`): at that point every entity is known to have
/// pre-acknowledged — hence accepted — `p`, so no `RET` for it can ever
/// arrive again.
#[derive(Debug, Clone, Default)]
pub struct SendLog {
    pdus: VecDeque<DataPdu>,
}

impl SendLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SendLog::default()
    }

    /// Records a freshly broadcast PDU (the paper's `enqueue(SL_i, p)`).
    ///
    /// # Panics
    ///
    /// Panics if sequence numbers are not recorded in increasing order.
    pub fn record(&mut self, pdu: DataPdu) {
        if let Some(last) = self.pdus.back() {
            assert!(pdu.seq > last.seq, "send log must grow monotonically");
        }
        self.pdus.push_back(pdu);
    }

    /// Fetches the PDUs in `[from, to)` for retransmission, in order.
    /// Sequence numbers already pruned (or never sent) are skipped.
    pub fn range(&self, from: Seq, to: Seq) -> impl Iterator<Item = &DataPdu> {
        self.pdus
            .iter()
            .filter(move |p| p.seq >= from && p.seq < to)
    }

    /// Drops every PDU with `seq < acknowledged` (safe to forget).
    /// Returns how many were pruned.
    pub fn prune_below(&mut self, acknowledged: Seq) -> usize {
        let before = self.pdus.len();
        while matches!(self.pdus.front(), Some(p) if p.seq < acknowledged) {
            self.pdus.pop_front();
        }
        before - self.pdus.len()
    }

    /// Iterates over every retained PDU in sequence order (state export).
    pub fn iter(&self) -> impl Iterator<Item = &DataPdu> {
        self.pdus.iter()
    }

    /// Number of retained PDUs.
    pub fn len(&self) -> usize {
        self.pdus.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.pdus.is_empty()
    }
}

/// The per-source receipt logs `RRL_{i,j}`: PDUs accepted from each entity,
/// awaiting pre-acknowledgment. Per-source FIFO queues — acceptance is in
/// sequence order, and the PACK action always examines the top (§4.4).
///
/// A running total keeps [`ReceiptLogs::total_len`] O(1) — it sits on the
/// buffer-accounting path ([`free_buffer_units`]) consulted on every
/// transmission and receive.
///
/// [`free_buffer_units`]: crate::Entity::free_buffer_units
#[derive(Debug, Clone)]
pub struct ReceiptLogs {
    logs: Vec<VecDeque<DataPdu>>,
    total: usize,
}

impl ReceiptLogs {
    /// Creates empty logs for a cluster of `n`.
    pub fn new(n: usize) -> Self {
        ReceiptLogs {
            logs: (0..n).map(|_| VecDeque::new()).collect(),
            total: 0,
        }
    }

    /// Appends an accepted PDU to its source's log.
    ///
    /// # Panics
    ///
    /// Panics if acceptance order violates per-source sequence order (a
    /// protocol bug, not an input error — the ACC condition guarantees it).
    pub fn accept(&mut self, pdu: DataPdu) {
        let log = &mut self.logs[pdu.src.index()];
        if let Some(last) = log.back() {
            assert!(pdu.seq > last.seq, "acceptance out of order");
        }
        log.push_back(pdu);
        self.total += 1;
    }

    /// The oldest accepted, not yet pre-acknowledged PDU from `source`.
    pub fn top(&self, source: EntityId) -> Option<&DataPdu> {
        self.logs[source.index()].front()
    }

    /// Removes and returns the top PDU from `source`'s log.
    pub fn dequeue(&mut self, source: EntityId) -> Option<DataPdu> {
        let pdu = self.logs[source.index()].pop_front();
        if pdu.is_some() {
            self.total -= 1;
        }
        pdu
    }

    /// PDUs currently held for `source`.
    pub fn len_of(&self, source: EntityId) -> usize {
        self.logs[source.index()].len()
    }

    /// Iterates over `source`'s held PDUs, oldest first (state export).
    pub fn iter_source(&self, source: EntityId) -> impl Iterator<Item = &DataPdu> {
        self.logs[source.index()].iter()
    }

    /// Total PDUs across all sources (for buffer accounting). O(1).
    pub fn total_len(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pdu(src: u32, seq: u64) -> DataPdu {
        DataPdu {
            cid: 0,
            src: EntityId::new(src),
            seq: Seq::new(seq),
            ack: vec![Seq::FIRST, Seq::FIRST],
            buf: 0,
            data: Bytes::new(),
        }
    }

    #[test]
    fn send_log_range_is_half_open() {
        let mut sl = SendLog::new();
        for s in 1..=5 {
            sl.record(pdu(0, s));
        }
        let got: Vec<u64> = sl
            .range(Seq::new(2), Seq::new(4))
            .map(|p| p.seq.get())
            .collect();
        assert_eq!(got, vec![2, 3]);
        assert_eq!(sl.len(), 5);
    }

    #[test]
    fn send_log_prunes_acknowledged_prefix() {
        let mut sl = SendLog::new();
        for s in 1..=5 {
            sl.record(pdu(0, s));
        }
        assert_eq!(sl.prune_below(Seq::new(4)), 3);
        assert_eq!(sl.len(), 2);
        // Pruned PDUs are no longer retransmittable.
        assert_eq!(sl.range(Seq::new(1), Seq::new(10)).count(), 2);
        assert_eq!(sl.prune_below(Seq::new(1)), 0);
    }

    #[test]
    fn send_log_empty_accessors() {
        let sl = SendLog::new();
        assert!(sl.is_empty());
        assert_eq!(sl.range(Seq::new(1), Seq::new(9)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn send_log_rejects_regression() {
        let mut sl = SendLog::new();
        sl.record(pdu(0, 2));
        sl.record(pdu(0, 1));
    }

    #[test]
    fn receipt_logs_are_per_source_fifo() {
        let mut rrl = ReceiptLogs::new(2);
        rrl.accept(pdu(0, 1));
        rrl.accept(pdu(1, 1));
        rrl.accept(pdu(0, 2));
        assert_eq!(rrl.len_of(EntityId::new(0)), 2);
        assert_eq!(rrl.len_of(EntityId::new(1)), 1);
        assert_eq!(rrl.total_len(), 3);
        assert_eq!(rrl.top(EntityId::new(0)).unwrap().seq, Seq::new(1));
        assert_eq!(rrl.dequeue(EntityId::new(0)).unwrap().seq, Seq::new(1));
        assert_eq!(rrl.top(EntityId::new(0)).unwrap().seq, Seq::new(2));
        assert!(rrl.dequeue(EntityId::new(1)).is_some());
        assert!(rrl.dequeue(EntityId::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn receipt_logs_reject_out_of_order_acceptance() {
        let mut rrl = ReceiptLogs::new(2);
        rrl.accept(pdu(0, 2));
        rrl.accept(pdu(0, 1));
    }
}
