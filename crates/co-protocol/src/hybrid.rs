//! [`HybridCore`]: hybrid-buffering causal delivery behind the
//! [`DeliveryCore`] trait.
//!
//! Follows the hybrid approach of Almeida's causal-delivery work
//! (PAPERS.md): per-source FIFO links carry the bulk of the ordering, and
//! a *small causal buffer* holds the few messages whose cross-source
//! dependencies have not yet been delivered. Each data PDU piggybacks its
//! sender's **received frontier** (the same wire `ACK` vector the CO
//! engine uses) as its dependency vector: receipt-before-send is a
//! happens-before relation, so delivering a message only after everything
//! below its vector is causally consistent — and strictly cheaper to
//! check than the paper's two-round matrix stability.
//!
//! Compared with [`crate::CoCore`]:
//!
//! * knowledge state is **O(n)** (two frontier vectors and one ack-of-me
//!   vector) instead of two O(n²) matrices;
//! * a message is delivered as soon as its dependencies are — **one
//!   one-way latency** in the loss-free case, no pre-ack/ack rounds;
//! * the price: delivery is *not* globally stable when it happens (a
//!   receiver may deliver a message other entities have not yet seen),
//!   and delivery orders may legitimately differ across receivers for
//!   concurrent messages.
//!
//! Loss handling reuses the CO machinery wholesale: F1 sequence-gap
//! detection feeding the [`ReorderBuffer`], F2 ack-vector evidence, and
//! the selective / go-back-n `RET` repair path over the [`SendLog`].

use bytes::Bytes;
use causal_order::{EntityId, Seq};
use co_wire::{AckOnlyPdu, DataPdu, Pdu, RetPdu};
use std::collections::VecDeque;

use crate::actions::{Action, ActionSink, Delivery, SubmitOutcome};
use crate::co_core::pdu_bytes;
use crate::config::{Config, ConfigError, DeferralPolicy, RetransmissionPolicy};
use crate::core::{DeliveryCore, Guarantee, MAX_QUEUED_SUBMITS};
use crate::error::ProtocolError;
use crate::flow::{flow_decision, flow_limit, FlowDecision};
use crate::logs::SendLog;
use crate::metrics::Metrics;
use crate::reorder::ReorderBuffer;
use co_observe::{Observer, ProtocolEvent};

/// Exported [`HybridCore`] state (crash-restart; see
/// [`DeliveryCore::export_state`]).
#[derive(Debug, Clone)]
pub struct HybridState {
    /// Received-contiguous frontier per source (own entry: next own seq).
    pub fifo_next: Vec<Seq>,
    /// Delivery frontier per source.
    pub delivered_next: Vec<Seq>,
    /// FIFO-accepted PDUs whose causal dependencies are still undelivered,
    /// in acceptance order.
    pub causal_buf: Vec<DataPdu>,
    /// Out-of-order PDUs per source awaiting gap repair.
    pub reorder: Vec<Vec<DataPdu>>,
    /// Own sent PDUs retained for retransmission.
    pub send_log: Vec<DataPdu>,
    /// Highest `ack[me]` seen from each peer (own entry unused).
    pub peer_ack_of_me: Vec<Seq>,
    /// Latest advertised free buffer units per entity.
    pub buf_known: Vec<u32>,
    /// Payloads queued behind the flow condition.
    pub pending: Vec<Bytes>,
    /// Peers heard from since our last own transmission.
    pub heard_since_send: Vec<bool>,
    /// Outstanding `RET` per source: `(lseq, when_sent_us)`.
    pub ret_outstanding: Vec<Option<(Seq, u64)>>,
    /// Whether a paced `AckOnly` reply is owed.
    pub peer_needs_update: bool,
    /// Last transmission time, µs.
    pub last_send_us: u64,
    /// High-water mark of buffered PDUs.
    pub peak_held_pdus: usize,
    /// Cumulative counters.
    pub metrics: Metrics,
}

/// Hybrid-buffering causal core: FIFO links + a small causal buffer.
///
/// See the [module docs](self) for the algorithm and trade-offs.
#[derive(Debug)]
pub struct HybridCore {
    config: Config,
    /// Received-contiguous frontier per source; `fifo_next[me]` is the
    /// next sequence number this entity will assign. Plays the role the
    /// `REQ` vector plays in [`crate::CoCore`], including on the wire.
    fifo_next: Vec<Seq>,
    /// Delivery frontier per source (`delivered_next[j]` = next seq from
    /// `E_j` to deliver). Always `<= fifo_next` pointwise.
    delivered_next: Vec<Seq>,
    /// FIFO-accepted PDUs waiting for cross-source dependencies.
    causal_buf: VecDeque<DataPdu>,
    /// Out-of-order PDUs awaiting gap repair (selective mode only).
    reorder: ReorderBuffer,
    /// Own sent PDUs for `RET` service.
    sl: SendLog,
    /// Highest `ack[me]` seen from each peer — drives flow control,
    /// send-log pruning and stability.
    peer_ack_of_me: Vec<Seq>,
    buf_known: Vec<u32>,
    pending: VecDeque<Bytes>,
    heard_since_send: Vec<bool>,
    /// Bumped whenever `fifo_next` changes (frontier entries are
    /// monotonic, so version equality is value equality).
    frontier_version: u64,
    /// `frontier_version` as of the last confirmation-bearing send.
    advertised: u64,
    ret_outstanding: Vec<Option<(Seq, u64)>>,
    peer_needs_update: bool,
    last_send_us: u64,
    peak_held_pdus: usize,
    metrics: Metrics,
}

impl HybridCore {
    fn held(&self) -> usize {
        self.causal_buf.len() + self.reorder.total_len()
    }

    fn free_buf(&self) -> u32 {
        let held = self.held() as u64 * u64::from(self.config.pdu_buf_units);
        u32::try_from(u64::from(self.config.buffer_units).saturating_sub(held)).unwrap_or(0)
    }

    fn min_buf(&self) -> u32 {
        let me = self.config.me.index();
        self.buf_known
            .iter()
            .enumerate()
            .map(|(j, &b)| if j == me { self.free_buf() } else { b })
            .min()
            .expect("n >= 2")
    }

    /// Lowest `ack[me]` across peers (own entry substitutes our frontier):
    /// everything below is known received everywhere.
    fn min_ack_of_me(&self) -> Seq {
        let me = self.config.me.index();
        self.peer_ack_of_me
            .iter()
            .enumerate()
            .map(|(j, &a)| if j == me { self.fifo_next[me] } else { a })
            .min()
            .expect("n >= 2")
    }

    fn heartbeat_interval(&self) -> u64 {
        let deferral = match self.config.deferral {
            DeferralPolicy::Immediate => 0,
            DeferralPolicy::Deferred { timeout_us } => timeout_us,
        };
        deferral.max(self.config.ret_retry_us).max(1)
    }

    fn reply_pace_us(&self) -> u64 {
        self.heartbeat_interval() / 2 + 1
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn on_data<O: Observer>(
        &mut self,
        p: DataPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        let src = p.src;
        self.fold_peer_ack(src, &p.ack);
        self.scan_f2(src, &p.ack, false, now_us, observer, sink);

        let expected = self.fifo_next[src.index()];
        if p.seq < expected {
            self.metrics.duplicates += 1;
            observer.on_event(ProtocolEvent::Duplicate {
                src,
                seq: p.seq,
                now_us,
            });
            return;
        }
        if p.seq > expected {
            self.metrics.f1_detections += 1;
            observer.on_event(ProtocolEvent::F1Detected {
                src,
                expected,
                got: p.seq,
                now_us,
            });
            match self.config.retransmission {
                RetransmissionPolicy::Selective => {
                    let seq = p.seq;
                    if self.reorder.store(p) {
                        self.metrics.buffered_out_of_order += 1;
                        observer.on_event(ProtocolEvent::ReorderEnter { src, seq, now_us });
                    } else {
                        self.metrics.duplicates += 1;
                        observer.on_event(ProtocolEvent::Duplicate { src, seq, now_us });
                    }
                    self.send_ret(src, seq, now_us, observer, sink);
                }
                RetransmissionPolicy::GoBackN => {
                    self.metrics.discarded_out_of_order += 1;
                    observer.on_event(ProtocolEvent::OutOfOrderDiscarded {
                        src,
                        seq: p.seq,
                        now_us,
                    });
                    self.send_ret(src, p.seq, now_us, observer, sink);
                }
            }
            return;
        }
        self.accept_data(p, false, now_us, observer);
        loop {
            let next = self.fifo_next[src.index()];
            match self.reorder.take_exact(src, next) {
                Some(q) => self.accept_data(q, true, now_us, observer),
                None => break,
            }
        }
        if let Some((lseq, _)) = self.ret_outstanding[src.index()] {
            if self.fifo_next[src.index()] >= lseq {
                self.ret_outstanding[src.index()] = None;
            }
        }
        self.reorder.drop_below(src, self.fifo_next[src.index()]);
    }

    /// FIFO acceptance: advance the received frontier and park the PDU in
    /// the causal buffer until [`HybridCore::drain_deliverable`] finds its
    /// dependencies satisfied.
    fn accept_data<O: Observer>(
        &mut self,
        p: DataPdu,
        from_reorder: bool,
        now_us: u64,
        observer: &mut O,
    ) {
        let src = p.src;
        let seq = p.seq;
        debug_assert_eq!(p.seq, self.fifo_next[src.index()], "FIFO acceptance");
        self.fifo_next[src.index()] = p.seq.next();
        self.frontier_version += 1;
        self.metrics.accepted += 1;
        if from_reorder {
            self.metrics.accepted_from_reorder += 1;
            observer.on_event(ProtocolEvent::ReorderExit { src, seq, now_us });
        }
        observer.on_event(ProtocolEvent::Accepted {
            src,
            seq,
            from_reorder,
            now_us,
        });
        self.causal_buf.push_back(p);
    }

    /// Causal delivery sweep: deliver every buffered PDU whose source is
    /// next in per-source order *and* whose dependency vector is covered
    /// by the delivery frontier, repeating until a full pass makes no
    /// progress (one delivery can unblock others).
    fn drain_deliverable<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.causal_buf.len() {
                if self.deliverable(&self.causal_buf[i]) {
                    let p = self.causal_buf.remove(i).expect("index checked");
                    self.delivered_next[p.src.index()] = p.seq.next();
                    self.metrics.delivered += 1;
                    observer.on_event(ProtocolEvent::Delivered {
                        src: p.src,
                        seq: p.seq,
                        now_us,
                    });
                    sink.accept(Action::Deliver(Delivery {
                        src: p.src,
                        seq: p.seq,
                        ack: p.ack,
                        data: p.data,
                    }));
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// `m` is deliverable when it is next from its source and everything
    /// its sender had received when it sent `m` has been delivered here.
    /// The sender's own column is exempt: per-source FIFO (the
    /// `delivered_next[src] == m.seq` half) already orders it.
    fn deliverable(&self, m: &DataPdu) -> bool {
        let src = m.src.index();
        if self.delivered_next[src] != m.seq {
            return false;
        }
        m.ack
            .iter()
            .enumerate()
            .all(|(k, &dep)| k == src || self.delivered_next[k] >= dep)
    }

    fn on_ret<O: Observer>(
        &mut self,
        r: RetPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.fold_peer_ack(r.src, &r.ack);
        self.scan_f2(r.src, &r.ack, true, now_us, observer, sink);
        if r.lsrc != self.config.me {
            return;
        }
        let from = r.ack[self.config.me.index()];
        let to = match self.config.retransmission {
            RetransmissionPolicy::Selective => r.lseq,
            RetransmissionPolicy::GoBackN => self.fifo_next[self.config.me.index()],
        };
        let mut served = 0u64;
        for pdu in self.sl.range(from, to) {
            observer.on_event(ProtocolEvent::RetServed {
                to: r.src,
                seq: pdu.seq,
                now_us,
            });
            sink.accept(Action::Broadcast(Pdu::Data(pdu.clone())));
            served += 1;
        }
        self.metrics.retransmissions_sent += served;
        let requested = to.get().saturating_sub(from.get());
        if served < requested {
            let amount = requested - served;
            self.metrics.ret_unservable += amount;
            observer.on_event(ProtocolEvent::RetUnservable { amount, now_us });
        }
    }

    fn on_ack_only<O: Observer>(
        &mut self,
        a: AckOnlyPdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.fold_peer_ack(a.src, &a.ack);
        // Lag detection, two halves sharing one loop (see the AckOnly
        // construction in `send_ack_only` for what `acked` carries here):
        // the sender misses data we have (`ack` behind our frontier), or
        // the sender's aggregated receipt knowledge is behind what we hold
        // (`acked` behind our frontier — typically *our* confirmations to
        // it were lost, leaving its flow window wedged). Either way a
        // paced `AckOnly` reply carries exactly the refresher it needs.
        for j in 0..self.config.n() {
            if a.ack[j] < self.fifo_next[j] || a.acked[j] < self.fifo_next[j] {
                self.peer_needs_update = true;
                break;
            }
        }
        self.scan_f2(a.src, &a.ack, true, now_us, observer, sink);
    }

    /// Monotonic fold of a peer's confirmation of *our* PDUs, then prune
    /// the send log below what everyone is known to have.
    fn fold_peer_ack(&mut self, from: EntityId, ack: &[Seq]) {
        let me = self.config.me.index();
        let slot = &mut self.peer_ack_of_me[from.index()];
        if ack[me] > *slot {
            *slot = ack[me];
            self.sl.prune_below(self.min_ack_of_me());
        }
    }

    /// Failure condition F2, identical in spirit to [`crate::CoCore`]'s:
    /// a frontier entry above ours proves PDUs we never received exist.
    /// Sender-column handling matches the CO engine (excluded for data —
    /// F1 covers it — included for control PDUs, where it is the only
    /// evidence of an all-receiver tail loss).
    fn scan_f2<O: Observer>(
        &mut self,
        from: EntityId,
        ack: &[Seq],
        include_sender_column: bool,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        for (j, &confirmed) in ack.iter().enumerate().take(self.config.n()) {
            let source = EntityId::new(j as u32);
            if source == self.config.me || (source == from && !include_sender_column) {
                continue;
            }
            if confirmed > self.fifo_next[j] {
                self.metrics.f2_detections += 1;
                observer.on_event(ProtocolEvent::F2Detected {
                    src: source,
                    confirmed,
                    via: from,
                    now_us,
                });
                self.send_ret(source, confirmed, now_us, observer, sink);
            }
        }
    }

    /// `RET` request with the same dedup/clamp rules as the CO engine.
    fn send_ret<O: Observer>(
        &mut self,
        source: EntityId,
        lseq: Seq,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        debug_assert_ne!(source, self.config.me);
        let lseq = match self.reorder.buffered(source).next() {
            Some(first_buffered) => lseq.min(first_buffered),
            None => lseq,
        };
        if lseq <= self.fifo_next[source.index()] {
            return;
        }
        let slot = &mut self.ret_outstanding[source.index()];
        if let Some((prev_lseq, when)) = *slot {
            let fresh = now_us.saturating_sub(when) < self.config.ret_retry_us;
            if fresh && lseq <= prev_lseq {
                self.metrics.ret_suppressed += 1;
                observer.on_event(ProtocolEvent::RetSuppressed {
                    src: source,
                    lseq,
                    now_us,
                });
                return;
            }
        }
        *slot = Some((lseq, now_us));
        let ret = RetPdu {
            cid: self.config.cluster.cid,
            src: self.config.me,
            lsrc: source,
            lseq,
            ack: self.fifo_next.clone(),
            buf: self.free_buf(),
        };
        self.metrics.ret_sent += 1;
        observer.on_event(ProtocolEvent::RetSent {
            src: source,
            lseq,
            now_us,
        });
        sink.accept(Action::Broadcast(Pdu::Ret(ret)));
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    fn flow_open(&self) -> bool {
        let me = self.config.me.index();
        matches!(
            flow_decision(
                self.fifo_next[me],
                self.min_ack_of_me(),
                self.config.window,
                self.min_buf(),
                self.config.pdu_buf_units,
                self.config.n(),
            ),
            FlowDecision::Open
        )
    }

    fn broadcast_data<O: Observer>(
        &mut self,
        data: Bytes,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) -> Seq {
        let me = self.config.me;
        let seq = self.fifo_next[me.index()];
        let pdu = DataPdu {
            cid: self.config.cluster.cid,
            src: me,
            seq,
            // The received frontier doubles as the dependency vector.
            ack: self.fifo_next.clone(),
            buf: self.free_buf(),
            data,
        };
        self.fifo_next[me.index()] = seq.next();
        self.frontier_version += 1;
        self.sl.record(pdu.clone());
        self.metrics.data_sent += 1;
        observer.on_event(ProtocolEvent::DataSent {
            src: me,
            seq,
            now_us,
        });
        sink.accept(Action::Broadcast(Pdu::Data(pdu.clone())));
        // Self-acceptance: our own PDU enters the causal buffer so the
        // local application receives it in causal position.
        self.metrics.accepted += 1;
        observer.on_event(ProtocolEvent::Accepted {
            src: me,
            seq,
            from_reorder: false,
            now_us,
        });
        self.causal_buf.push_back(pdu);
        self.mark_advertised(now_us);
        seq
    }

    fn try_flush_pending<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        if self.pending.is_empty() || !self.flow_open() {
            return;
        }
        observer.on_event(ProtocolEvent::FlowOpened { now_us });
        while !self.pending.is_empty() && self.flow_open() {
            let data = self.pending.pop_front().expect("checked non-empty");
            self.broadcast_data(data, now_us, observer, sink);
        }
        self.drain_deliverable(now_us, observer, sink);
    }

    fn unadvertised(&self) -> bool {
        self.advertised != self.frontier_version
    }

    fn mark_advertised(&mut self, now_us: u64) {
        self.advertised = self.frontier_version;
        self.heard_since_send.fill(false);
        self.last_send_us = now_us;
    }

    fn maybe_confirm<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        if self.peer_needs_update
            && now_us.saturating_sub(self.last_send_us) >= self.reply_pace_us()
        {
            self.peer_needs_update = false;
            self.send_ack_only(now_us, observer, sink);
            return;
        }
        if !self.unadvertised() {
            return;
        }
        let should = match self.config.deferral {
            DeferralPolicy::Immediate => true,
            DeferralPolicy::Deferred { .. } => self
                .config
                .cluster
                .peers(self.config.me)
                .all(|p| self.heard_since_send[p.index()]),
        };
        if should {
            self.send_ack_only(now_us, observer, sink);
        }
    }

    fn send_ack_only<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        // Wire mapping for the hybrid core: `ack` is the received
        // frontier (as on data PDUs); `packed` is the delivery frontier;
        // `acked` is the *aggregated receipt knowledge* — our frontier,
        // except the own entry, which carries the lowest peer
        // confirmation of our PDUs. Peers use `acked` to detect that our
        // view of their confirmations is stale (lost `AckOnly`s) and owe
        // us a refresher — without it, a sender whose flow window wedged
        // on lost confirmations would stay wedged forever.
        let me = self.config.me.index();
        let mut acked = self.fifo_next.clone();
        acked[me] = self.min_ack_of_me();
        let pdu = AckOnlyPdu {
            cid: self.config.cluster.cid,
            src: self.config.me,
            ack: self.fifo_next.clone(),
            packed: self.delivered_next.clone(),
            acked,
            buf: self.free_buf(),
        };
        self.metrics.ack_only_sent += 1;
        observer.on_event(ProtocolEvent::AckOnlySent { now_us });
        sink.accept(Action::Broadcast(Pdu::AckOnly(pdu)));
        self.mark_advertised(now_us);
    }

    fn note_peak(&mut self) {
        self.peak_held_pdus = self.peak_held_pdus.max(self.held());
    }
}

impl DeliveryCore for HybridCore {
    type State = HybridState;

    const NAME: &'static str = "hybrid";
    const GUARANTEE: Guarantee = Guarantee::Causal;

    fn new(config: Config) -> Result<Self, ConfigError> {
        let n = config.n();
        Ok(HybridCore {
            fifo_next: vec![Seq::FIRST; n],
            delivered_next: vec![Seq::FIRST; n],
            causal_buf: VecDeque::new(),
            reorder: ReorderBuffer::new(n),
            sl: SendLog::new(),
            peer_ack_of_me: vec![Seq::FIRST; n],
            buf_known: vec![config.buffer_units; n],
            pending: VecDeque::new(),
            heard_since_send: vec![false; n],
            frontier_version: 0,
            advertised: 0,
            ret_outstanding: vec![None; n],
            peer_needs_update: false,
            last_send_us: 0,
            peak_held_pdus: 0,
            metrics: Metrics::default(),
            config,
        })
    }

    fn restore(config: Config, state: Self::State) -> Result<Self, ConfigError> {
        let mut e = <HybridCore as DeliveryCore>::new(config)?;
        let n = e.config.n();
        assert_eq!(
            state.fifo_next.len(),
            n,
            "state/config cluster size mismatch"
        );
        assert_eq!(state.delivered_next.len(), n, "delivery frontier mismatch");
        assert_eq!(state.peer_ack_of_me.len(), n, "peer ack vector mismatch");
        assert_eq!(state.buf_known.len(), n, "buf_known length mismatch");
        assert_eq!(state.reorder.len(), n, "reorder source count mismatch");
        assert_eq!(state.heard_since_send.len(), n, "heard flags mismatch");
        assert_eq!(state.ret_outstanding.len(), n, "RET records mismatch");
        e.fifo_next = state.fifo_next;
        e.delivered_next = state.delivered_next;
        e.causal_buf = state.causal_buf.into();
        for buffer in state.reorder {
            for pdu in buffer {
                e.reorder.store(pdu);
            }
        }
        for pdu in state.send_log {
            e.sl.record(pdu);
        }
        e.peer_ack_of_me = state.peer_ack_of_me;
        e.buf_known = state.buf_known;
        e.pending = state.pending.into();
        e.heard_since_send = state.heard_since_send;
        e.ret_outstanding = state.ret_outstanding;
        e.peer_needs_update = state.peer_needs_update;
        e.last_send_us = state.last_send_us;
        e.peak_held_pdus = state.peak_held_pdus;
        e.metrics = state.metrics;
        // Owe the cluster a fresh advertisement (frontier_version starts
        // at 0 == advertised, so bump the version, not the watermark).
        e.frontier_version = 1;
        e.advertised = 0;
        Ok(e)
    }

    fn export_state(&self) -> Self::State {
        let n = self.config.n();
        HybridState {
            fifo_next: self.fifo_next.clone(),
            delivered_next: self.delivered_next.clone(),
            causal_buf: self.causal_buf.iter().cloned().collect(),
            reorder: (0..n)
                .map(|j| {
                    self.reorder
                        .pdus(EntityId::new(j as u32))
                        .cloned()
                        .collect()
                })
                .collect(),
            send_log: self.sl.iter().cloned().collect(),
            peer_ack_of_me: self.peer_ack_of_me.clone(),
            buf_known: self.buf_known.clone(),
            pending: self.pending.iter().cloned().collect(),
            heard_since_send: self.heard_since_send.clone(),
            ret_outstanding: self.ret_outstanding.clone(),
            peer_needs_update: self.peer_needs_update,
            last_send_us: self.last_send_us,
            peak_held_pdus: self.peak_held_pdus,
            metrics: self.metrics,
        }
    }

    fn config(&self) -> &Config {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn state_bytes(&self) -> usize {
        let n = self.config.n();
        let seq = std::mem::size_of::<Seq>();
        // Three O(n) Seq vectors plus per-source bookkeeping — no
        // matrices.
        let knowledge = 3 * n * seq;
        let vectors =
            n * std::mem::size_of::<u32>() + n + n * std::mem::size_of::<Option<(Seq, u64)>>();
        let buffered: usize = self
            .sl
            .iter()
            .chain(self.causal_buf.iter())
            .chain((0..n).flat_map(|j| self.reorder.pdus(EntityId::new(j as u32))))
            .map(|p| pdu_bytes(n, p.data.len()))
            .sum();
        knowledge + vectors + buffered
    }

    fn held_pdus(&self) -> usize {
        self.held()
    }

    fn peak_held_pdus(&self) -> usize {
        self.peak_held_pdus
    }

    fn pending_submits(&self) -> usize {
        self.pending.len()
    }

    fn is_quiescent(&self) -> bool {
        self.held() == 0 && self.pending.is_empty()
    }

    fn is_fully_stable(&self) -> bool {
        let me = self.config.me.index();
        self.is_quiescent() && self.min_ack_of_me() >= self.fifo_next[me]
    }

    fn free_buffer_units(&self) -> u32 {
        self.free_buf()
    }

    fn submit<O: Observer>(
        &mut self,
        data: Bytes,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) -> Result<SubmitOutcome, ProtocolError> {
        if data.len() > self.config.max_payload {
            return Err(ProtocolError::PayloadTooLarge {
                size: data.len(),
                max: self.config.max_payload,
            });
        }
        if self.pending.is_empty() && self.flow_open() {
            observer.on_event(ProtocolEvent::Submitted { now_us });
            let seq = self.broadcast_data(data, now_us, observer, sink);
            self.drain_deliverable(now_us, observer, sink);
            Ok(SubmitOutcome::Sent(seq))
        } else {
            if self.pending.len() >= MAX_QUEUED_SUBMITS {
                return Err(ProtocolError::SubmitQueueFull {
                    limit: MAX_QUEUED_SUBMITS,
                });
            }
            observer.on_event(ProtocolEvent::Submitted { now_us });
            observer.on_event(ProtocolEvent::FlowClosed { now_us });
            let me = self.config.me.index();
            observer.on_event(ProtocolEvent::FlowBlocked {
                outstanding: self.fifo_next[me].get() - self.min_ack_of_me().get(),
                limit: flow_limit(
                    self.config.window,
                    self.min_buf(),
                    self.config.pdu_buf_units,
                    self.config.n(),
                ),
                now_us,
            });
            self.pending.push_back(data);
            self.metrics.flow_blocked += 1;
            Ok(SubmitOutcome::Queued)
        }
    }

    fn on_validated_pdu<O: Observer>(
        &mut self,
        pdu: Pdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        let from = pdu.src();
        self.heard_since_send[from.index()] = true;
        self.buf_known[from.index()] = pdu.buf();
        match pdu {
            Pdu::Data(p) => self.on_data(p, now_us, observer, sink),
            Pdu::Ret(r) => self.on_ret(r, now_us, observer, sink),
            Pdu::AckOnly(a) => self.on_ack_only(a, now_us, observer, sink),
        }
        self.drain_deliverable(now_us, observer, sink);
        self.try_flush_pending(now_us, observer, sink);
    }

    fn end_batch<O: Observer>(
        &mut self,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) {
        self.maybe_confirm(now_us, observer, sink);
        self.note_peak();
    }

    fn on_tick<O: Observer>(&mut self, now_us: u64, observer: &mut O, sink: &mut impl ActionSink) {
        let timeout = match self.config.deferral {
            DeferralPolicy::Immediate => 0,
            DeferralPolicy::Deferred { timeout_us } => timeout_us,
        };
        if self.peer_needs_update
            && now_us.saturating_sub(self.last_send_us) >= self.reply_pace_us()
        {
            self.peer_needs_update = false;
            self.send_ack_only(now_us, observer, sink);
        } else if (self.unadvertised() && now_us.saturating_sub(self.last_send_us) >= timeout)
            || (!self.is_fully_stable()
                && now_us.saturating_sub(self.last_send_us) >= self.heartbeat_interval())
        {
            self.send_ack_only(now_us, observer, sink);
        }
        for j in 0..self.config.n() {
            let source = EntityId::new(j as u32);
            let Some((lseq, when)) = self.ret_outstanding[j] else {
                continue;
            };
            if self.fifo_next[j] >= lseq {
                self.ret_outstanding[j] = None;
                continue;
            }
            if now_us.saturating_sub(when) >= self.config.ret_retry_us {
                self.ret_outstanding[j] = None;
                self.send_ret(source, lseq, now_us, observer, sink);
            }
        }
        self.note_peak();
    }

    fn next_deadline(&self, _now_us: u64) -> Option<u64> {
        let mut deadline: Option<u64> = None;
        let mut consider = |t: u64| {
            deadline = Some(deadline.map_or(t, |d: u64| d.min(t)));
        };
        if self.peer_needs_update {
            consider(self.last_send_us.saturating_add(self.reply_pace_us()));
        }
        if self.unadvertised() {
            let timeout = match self.config.deferral {
                DeferralPolicy::Immediate => 0,
                DeferralPolicy::Deferred { timeout_us } => timeout_us,
            };
            consider(self.last_send_us.saturating_add(timeout));
        } else if !self.is_fully_stable() {
            consider(self.last_send_us.saturating_add(self.heartbeat_interval()));
        }
        for j in 0..self.config.n() {
            if let Some((lseq, when)) = self.ret_outstanding[j] {
                if self.fifo_next[j] < lseq {
                    consider(when.saturating_add(self.config.ret_retry_us));
                }
            }
        }
        deadline
    }
}
