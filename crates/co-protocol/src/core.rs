//! The pluggable delivery-core abstraction.
//!
//! Everything between "validated PDU in" and "ordered delivery + protocol
//! actions out" — the acceptance test, buffering/reordering, ack
//! bookkeeping and flow gating — lives behind the [`DeliveryCore`] trait.
//! The [`crate::Entity`] shell owns what is *not* ordering-specific: input
//! validation, observer plumbing and the batching loop, all of which are
//! identical no matter how delivery is decided.
//!
//! Three cores ship with this crate:
//!
//! * [`crate::CoCore`] — the paper's AL/PAL matrix + CPI engine (§4), the
//!   reference implementation. O(n²) knowledge state; messages wait two
//!   confirmation rounds and deliver globally stable.
//! * [`crate::HybridCore`] — hybrid buffering in the style of Almeida's
//!   causal-delivery work (PAPERS.md): FIFO links plus a small causal
//!   buffer keyed on the piggybacked dependency vector. O(n) knowledge
//!   state; messages deliver as soon as their dependencies have, with no
//!   stability rounds.
//! * [`crate::SenderCore`] — sender-side enforcement in the style of Tong,
//!   Liittschwager and Kuper (PAPERS.md): the *sender* delays a broadcast
//!   until its causal dependencies are known received everywhere, so
//!   receivers deliver on (FIFO) arrival.
//!
//! All three speak the same `co-wire` PDU vocabulary (DATA / RET /
//! AckOnly), reuse the same loss-detection conditions (F1 sequence gaps,
//! F2 ack-vector evidence) and the same selective-retransmission machinery
//! — so `co-check` can race them under identical schedules and oracles,
//! and `co-bench`'s `core_matrix` suite can price them head-to-head.
//!
//! # Contract
//!
//! A core is a deterministic sans-IO state machine: no clocks, no IO, no
//! randomness. Time is the caller-supplied microsecond counter. For a
//! fixed input sequence (submits, validated PDUs, ticks) a core must
//! produce the identical action and event streams on every run — that is
//! what makes `co-check`'s digest-determinism oracle meaningful.
//!
//! What each callback may do:
//!
//! * [`DeliveryCore::submit`] — assign the payload a sequence number and
//!   broadcast it, or queue it (flow/ordering gate closed). May emit any
//!   actions and events.
//! * [`DeliveryCore::on_validated_pdu`] — the per-element half of receive
//!   processing. The shell has already validated the PDU (cluster id,
//!   source range, vector lengths, not looped back). The core must fully
//!   integrate the PDU — acceptance test, loss detection, retransmission
//!   service, delivery — but should defer *batch-amortizable* work
//!   (confirmation emission, gauge updates) to `end_batch`.
//! * [`DeliveryCore::end_batch`] — the per-batch epilogue, called once
//!   after one or more `on_validated_pdu` calls. A single-PDU receive is
//!   exactly `on_validated_pdu` + `end_batch`; batching N PDUs calls the
//!   element half N times and the epilogue once. Cores must keep protocol
//!   state and the DATA/RET/Deliver streams identical either way — only
//!   confirmation (`AckOnly`) timing and count may differ.
//! * [`DeliveryCore::on_tick`] — timers only: deferred confirmations,
//!   heartbeats, RET retries. Must be idempotent for the same `now_us`.
//!
//! State ownership: the core owns *all* ordering state and exports it
//! losslessly through [`DeliveryCore::export_state`] /
//! [`DeliveryCore::restore`] (the crash-restart path — the paper's
//! failure model is PDU loss, not amnesia). The shell owns nothing but
//! the observer.

use bytes::Bytes;
use co_wire::Pdu;

use crate::actions::{ActionSink, SubmitOutcome};
use crate::config::{Config, ConfigError};
use crate::error::ProtocolError;
use crate::metrics::Metrics;
use co_observe::Observer;

/// Upper bound on payloads queued while a core's send gate is closed
/// (flow condition, sender-side causal delay, …).
pub const MAX_QUEUED_SUBMITS: usize = 1 << 16;

/// The ordering guarantee a [`DeliveryCore`] provides, from weakest to
/// strongest. `co-check` parameterizes its causality oracle on this: a
/// FIFO-only core is exempt from the cross-source causality check, a
/// causal core must satisfy it, and a total-order core must additionally
/// deliver in one global sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Guarantee {
    /// Per-source FIFO only.
    Fifo,
    /// Causality-preserving delivery (the paper's CO service, §2.3).
    Causal,
    /// A single total order consistent with causality.
    Total,
}

impl Guarantee {
    /// Stable lowercase name (used in reports and bench row ids).
    pub fn name(self) -> &'static str {
        match self {
            Guarantee::Fifo => "fifo",
            Guarantee::Causal => "causal",
            Guarantee::Total => "total",
        }
    }
}

/// A pluggable delivery engine: the ordering half of an [`crate::Entity`].
///
/// See the [module docs](self) for the contract. Implementations in this
/// crate: [`crate::CoCore`], [`crate::HybridCore`], [`crate::SenderCore`].
///
/// The observer is threaded in per call (rather than owned) so the shell
/// can keep a single observer across core generations (crash-restart
/// replaces the core, not the observer) and so cores monomorphize against
/// the zero-cost [`co_observe::NoopObserver`] exactly like the
/// pre-redesign entity did — the bench trajectory guard holds the shell
/// to that.
pub trait DeliveryCore: Sized + Send + std::fmt::Debug + 'static {
    /// Complete exported protocol state for crash-restart simulation.
    type State: Clone + Send + std::fmt::Debug;

    /// Stable lowercase identifier (`"co"`, `"hybrid"`, `"sender"`) used
    /// by `co-check --core`, scenario plans and bench row ids.
    const NAME: &'static str;

    /// The delivery guarantee this core provides.
    const GUARANTEE: Guarantee;

    /// Creates the core in its initial state.
    ///
    /// # Errors
    ///
    /// Implementations may reject configurations they cannot honor; the
    /// cores in this crate are infallible for a valid [`Config`].
    fn new(config: Config) -> Result<Self, ConfigError>;

    /// Rebuilds a core from exported state (crash-restart).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from construction.
    ///
    /// # Panics
    ///
    /// May panic if the state's dimensions do not match `config` (a
    /// driver bug: state must be restored under its exporting config).
    fn restore(config: Config, state: Self::State) -> Result<Self, ConfigError>;

    /// Captures the complete protocol state (lossless; see
    /// [`DeliveryCore::restore`]).
    fn export_state(&self) -> Self::State;

    /// The configuration in force.
    fn config(&self) -> &Config;

    /// Cumulative counters.
    fn metrics(&self) -> &Metrics;

    /// Approximate resident bytes of ordering state: knowledge
    /// vectors/matrices plus buffered PDUs (headers, ack vectors and
    /// payloads). This is the space-cost axis of the core comparison —
    /// `co-bench`'s `core_matrix/mem` rows report it after a fixed
    /// workload, exposing the O(n²)-matrix vs O(n)-vector trade.
    fn state_bytes(&self) -> usize;

    /// PDUs currently held in ordering buffers.
    fn held_pdus(&self) -> usize;

    /// High-water mark of [`DeliveryCore::held_pdus`].
    fn peak_held_pdus(&self) -> usize;

    /// Payloads queued behind the send gate.
    fn pending_submits(&self) -> usize;

    /// `true` when nothing is buffered or queued anywhere.
    fn is_quiescent(&self) -> bool;

    /// `true` when, additionally, the core knows every peer has seen
    /// everything it sent (and, where the core tracks it, everything it
    /// accepted). A core that is not fully stable keeps emitting
    /// heartbeat confirmations from [`DeliveryCore::on_tick`] so tail
    /// losses are eventually detected and repaired.
    fn is_fully_stable(&self) -> bool;

    /// Free protocol-buffer units (advertised as `BUF` on the wire).
    fn free_buffer_units(&self) -> u32;

    /// The application submits a payload for causally ordered broadcast.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::PayloadTooLarge`] for oversized payloads;
    /// * [`ProtocolError::SubmitQueueFull`] when [`MAX_QUEUED_SUBMITS`]
    ///   payloads are already queued behind the send gate.
    fn submit<O: Observer>(
        &mut self,
        data: Bytes,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    ) -> Result<SubmitOutcome, ProtocolError>;

    /// Integrates one already-validated PDU (the per-element half of the
    /// receive pipeline; see the [module docs](self) for the batching
    /// contract).
    fn on_validated_pdu<O: Observer>(
        &mut self,
        pdu: Pdu,
        now_us: u64,
        observer: &mut O,
        sink: &mut impl ActionSink,
    );

    /// The per-batch receive epilogue (confirmation emission, gauges).
    fn end_batch<O: Observer>(&mut self, now_us: u64, observer: &mut O, sink: &mut impl ActionSink);

    /// Advances the core's notion of time (deferred confirmations,
    /// stability heartbeats, RET retries).
    fn on_tick<O: Observer>(&mut self, now_us: u64, observer: &mut O, sink: &mut impl ActionSink);

    /// The next time at which [`DeliveryCore::on_tick`] has work, if any.
    fn next_deadline(&self, now_us: u64) -> Option<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_ordering_and_names() {
        assert!(Guarantee::Fifo < Guarantee::Causal);
        assert!(Guarantee::Causal < Guarantee::Total);
        assert_eq!(Guarantee::Causal.name(), "causal");
        assert_eq!(Guarantee::Fifo.name(), "fifo");
        assert_eq!(Guarantee::Total.name(), "total");
    }
}
