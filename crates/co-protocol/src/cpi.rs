//! The pre-acknowledged receipt sublog `PRL` and the **CPI operation**
//! (causality-preserved insertion, §4.4).
//!
//! `PRL_i` holds pre-acknowledged PDUs *in causality-precedence order*. The
//! paper's `L < p` operation inserts `p` while keeping `L`
//! causality-preserved, deciding `p ⇒ q` purely from sequence numbers
//! (Theorem 4.1):
//!
//! * (2-1) `p` precedes everything → insert at the top;
//! * (2-2)/(2-3) something precedes `p`, or `p` is coincident with
//!   everything → append;
//! * (3) otherwise insert between `q1 ⇒ p ⇒ q2`.
//!
//! All four cases collapse to: *insert `p` after the last element already
//! known to precede `p`, immediately before the first element past that
//! point that `p` causally precedes; append if there is none.* When the
//! `⇒`-evidence among the elements is consistent (a partial order whose
//! restriction to the log is transitively closed), the predecessor bound
//! is redundant and this is exactly the paper's "before the first causal
//! successor" rule: a successor of `p` sitting before a predecessor `r`
//! of `p` would need `r ⇒ q` by transitivity, contradicting the log being
//! causality-preserved with `q` in front of `r`.
//!
//! **Why the predecessor bound exists.** The sequence-number relation of
//! Theorem 4.1 captures *direct* acceptance dependencies and is not
//! transitively closed: over three senders, `A ∥ B`, `B ⇒ C`, `C ⇒ A` can
//! hold simultaneously (the `⇒`-evidence for `B ⇒ A` is not carried by
//! any field), and a log already containing `⟨A B⟩` then admits *no*
//! position for `C` that satisfies both remaining edges — a limitation
//! inherent to the paper's data structures, not to this implementation.
//! Such triads really occur: one PACK round can pre-acknowledge several
//! sources at once (a single `AckOnly` fold, or a batched drain, can move
//! many `minAL` rows together), so `A` and `B` can enter the `PRL` in
//! earlier rounds than `C`. The naive successor scan would then insert
//! `C` *in front of its own predecessor* `B` — and a later same-source
//! `B' > B` with `B' ⇒ C` evidence would land before `B`, breaking FIFO
//! delivery (found by `co-check` schedule exploration over batched
//! drains; regressions: `cpi-triad-fifo-inversion.json` in
//! `tests/regressions/fixed/`, and `batch_fifo_triad` below).
//!
//! The predecessor bound resolves every triad in favor of the edges that
//! can carry application-level causality: elements already known to
//! precede `p` stay in front of it, unconditionally — in particular
//! same-source sequence order (FIFO) always holds. What it sacrifices is
//! `p`'s successor-evidence toward elements *ahead of* `p`'s last
//! predecessor — edges that in a consistent execution cannot be
//! delivery-real for that log order (a delivery-based dependency `p ⇒ q`
//! means `q`'s sender delivered `p` before sending `q`, which forces the
//! transitive evidence the triad lacks). The guarantee that matters to
//! applications — deliveries respect happened-before over *application*
//! events, the same level ISIS CBCAST provides — only requires ordering
//! pairs whose dependency went through a delivery.
//!
//! The end-to-end oracle tests (`tests/co_service_properties.rs`,
//! `tests/proptest_random_runs.rs`) verify delivery-level causality on
//! full runs, and `co-check`'s ground-truth happened-before oracles
//! verify it across adversarial fault schedules on both the per-PDU and
//! batched acceptance paths; the property tests in
//! `tests/proptest_protocol.rs` verify the insertion rule over
//! ⇒-respecting arrival orders and Example 4.1's batch.

use causal_order::{causally_precedes, SeqMeta};
use co_wire::DataPdu;
use std::collections::VecDeque;

/// A causally ordered log of pre-acknowledged PDUs.
///
/// Backed by a ring buffer so the two operations the delivery path performs
/// per PDU are cheap: [`dequeue`](CausalLog::dequeue) is O(1) (the old
/// `Vec::remove(0)` memmoved the whole log per delivery), and
/// [`insert`](CausalLog::insert) shifts only from the insertion point —
/// which the CPI rule places at or near the tail for in-order traffic —
/// instead of everything behind it.
#[derive(Debug, Clone, Default)]
pub struct CausalLog {
    pdus: VecDeque<DataPdu>,
    /// Cached [`SeqMeta`]s, index-aligned with `pdus`.
    metas: VecDeque<SeqMeta>,
}

impl CausalLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CausalLog::default()
    }

    /// The CPI operation `L < p`: inserts `pdu` keeping the log
    /// causality-preserved. Returns the insertion index.
    ///
    /// Implements the predecessor-dominant rule from the module docs:
    /// `pdu` goes after every element already known to precede it, then
    /// before the first causal successor past that point.
    pub fn insert(&mut self, pdu: DataPdu) -> usize {
        let meta = pdu.seq_meta();
        let start = self
            .metas
            .iter()
            .rposition(|q| causally_precedes(q, &meta))
            .map_or(0, |last_pred| last_pred + 1);
        let pos = self
            .metas
            .iter()
            .skip(start)
            .position(|q| causally_precedes(&meta, q))
            .map_or(self.pdus.len(), |offset| start + offset);
        self.pdus.insert(pos, pdu);
        self.metas.insert(pos, meta);
        pos
    }

    /// The oldest (top) element.
    pub fn top(&self) -> Option<&DataPdu> {
        self.pdus.front()
    }

    /// Removes and returns the top element. O(1).
    pub fn dequeue(&mut self) -> Option<DataPdu> {
        let pdu = self.pdus.pop_front();
        if pdu.is_some() {
            self.metas.pop_front();
        }
        pdu
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.pdus.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.pdus.is_empty()
    }

    /// Iterates top → last.
    pub fn iter(&self) -> impl Iterator<Item = &DataPdu> {
        self.pdus.iter()
    }

    /// Checks the causality-preservation invariant (test/debug helper):
    /// no element causally precedes an earlier one.
    pub fn is_causality_preserved(&self) -> bool {
        for (i, later) in self.metas.iter().enumerate() {
            for earlier in self.metas.iter().take(i) {
                if causally_precedes(later, earlier) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use causal_order::{EntityId, Seq};

    fn pdu(src: u32, seq: u64, ack: &[u64]) -> DataPdu {
        DataPdu {
            cid: 0,
            src: EntityId::new(src),
            seq: Seq::new(seq),
            ack: ack.iter().copied().map(Seq::new).collect(),
            buf: 0,
            data: Bytes::new(),
        }
    }

    /// Example 4.1's PDUs (Table 1).
    fn a() -> DataPdu {
        pdu(0, 1, &[1, 1, 1])
    }
    fn b() -> DataPdu {
        pdu(2, 1, &[2, 1, 1])
    }
    fn c() -> DataPdu {
        pdu(0, 2, &[2, 1, 1])
    }
    fn d() -> DataPdu {
        pdu(1, 1, &[3, 1, 2])
    }
    fn e_() -> DataPdu {
        pdu(0, 3, &[3, 2, 2])
    }

    fn order(log: &CausalLog) -> Vec<(u32, u64)> {
        log.iter().map(|p| (p.src.raw(), p.seq.get())).collect()
    }

    #[test]
    fn empty_log_append() {
        let mut log = CausalLog::new();
        assert_eq!(log.insert(a()), 0);
        assert_eq!(log.len(), 1);
        assert!(log.is_causality_preserved());
    }

    #[test]
    fn same_source_appends_in_seq_order() {
        let mut log = CausalLog::new();
        log.insert(a());
        log.insert(c());
        log.insert(e_());
        assert_eq!(order(&log), vec![(0, 1), (0, 2), (0, 3)]);
        assert!(log.is_causality_preserved());
    }

    #[test]
    fn example_4_1_insertion_sequence() {
        // Paper: PRL becomes ⟨a c e], then d is inserted between c and e,
        // then b between c and d → ⟨a c b d e].
        let mut log = CausalLog::new();
        log.insert(a());
        log.insert(c());
        log.insert(e_());
        let pos_d = log.insert(d());
        assert_eq!(pos_d, 2, "d goes between c and e");
        assert_eq!(order(&log), vec![(0, 1), (0, 2), (1, 1), (0, 3)]);
        let pos_b = log.insert(b());
        assert_eq!(pos_b, 2, "b goes between c and d");
        assert_eq!(
            order(&log),
            vec![(0, 1), (0, 2), (2, 1), (1, 1), (0, 3)],
            "final PRL is ⟨a c b d e]"
        );
        assert!(log.is_causality_preserved());
    }

    #[test]
    fn predecessor_inserted_late_lands_before_successor() {
        // Insert d first, then a (a ⇒ d via d.ACK_1 = 3 > 1): a must end up
        // before d even though it arrives later.
        let mut log = CausalLog::new();
        log.insert(d());
        let pos = log.insert(a());
        assert_eq!(pos, 0);
        assert_eq!(order(&log), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn coincident_appends_at_tail() {
        // b and c are causality-coincident (paper: c ∥ b).
        let mut log = CausalLog::new();
        log.insert(c());
        let pos = log.insert(b());
        assert_eq!(pos, 1, "rule (2-3): coincident appends at the tail");
    }

    #[test]
    fn dequeue_is_top_first() {
        let mut log = CausalLog::new();
        log.insert(a());
        log.insert(c());
        assert_eq!(log.dequeue().unwrap().seq, Seq::new(1));
        assert_eq!(log.top().unwrap().seq, Seq::new(2));
        assert_eq!(log.dequeue().unwrap().seq, Seq::new(2));
        assert!(log.dequeue().is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn invariant_detects_corruption() {
        // Build a deliberately wrong order by inserting via a fresh log and
        // checking the invariant catches a ⇒ violation: e before a.
        let mut log = CausalLog::new();
        log.insert(e_());
        // Force-check: inserting a via CPI repairs the order...
        log.insert(a());
        assert!(log.is_causality_preserved());
        assert_eq!(order(&log)[0], (0, 1));
    }

    /// The inconsistent triad from the module docs, in the shape
    /// `co-check` found it over batched drains (n = 5, entities E1..E5):
    /// the log holds `⟨A B⟩` with `A = E4#5 ∥ B = E1#2`; then `C = E5#3`
    /// arrives carrying `B ⇒ C` and `C ⇒ A` — no position satisfies both
    /// edges. The predecessor bound must keep `C` behind `B`, so that the
    /// same-source follow-up `B' = E1#3` (with `B' ⇒ C` evidence) cannot
    /// be pulled in front of `B` and break FIFO delivery.
    #[test]
    fn batch_fifo_triad() {
        let a = pdu(3, 5, &[1, 1, 1, 6, 4]); // accepted E5#1..3, not E1#2
        let b = pdu(0, 2, &[3, 1, 1, 1, 1]); // predates A's source entirely
        let c = pdu(4, 3, &[4, 1, 1, 1, 4]); // accepted E1#1..3 → B ⇒ C
        let b2 = pdu(0, 3, &[4, 1, 1, 1, 1]);

        let mut log = CausalLog::new();
        assert_eq!(log.insert(a), 0);
        assert_eq!(log.insert(b), 1, "A ∥ B appends");
        // Naive first-successor placement would put C at 0 (before its
        // own predecessor B, via C ⇒ A); the predecessor bound forces it
        // after B, sacrificing only the C ⇒ A edge the triad cannot keep.
        assert_eq!(log.insert(c), 2, "C stays behind its predecessor B");
        assert_eq!(
            log.insert(b2),
            2,
            "same-source B' lands between B and its successor C"
        );
        assert_eq!(order(&log), vec![(3, 5), (0, 2), (0, 3), (4, 3)]);
        let positions: Vec<u64> = log
            .iter()
            .filter(|p| p.src.raw() == 0)
            .map(|p| p.seq.get())
            .collect();
        assert_eq!(positions, vec![2, 3], "FIFO preserved for E1");
    }

    #[test]
    fn random_insertion_orders_converge_to_causal_order() {
        // All 5! arrival permutations of Example 4.1's PDUs must yield a
        // causality-preserved log with a,c,e in positions respecting
        // a ⇒ c ⇒ e, c ⇒ d ⇒ e, a ⇒ b ⇒ d.
        let pdus = [a(), b(), c(), d(), e_()];
        let mut perms = Vec::new();
        permutations(&mut [0, 1, 2, 3, 4], 0, &mut perms);
        for perm in perms {
            let mut log = CausalLog::new();
            for &i in &perm {
                log.insert(pdus[i].clone());
            }
            assert!(
                log.is_causality_preserved(),
                "violated for arrival order {perm:?}: {:?}",
                order(&log)
            );
        }
    }

    fn permutations(items: &mut [usize; 5], k: usize, out: &mut Vec<[usize; 5]>) {
        if k == items.len() {
            out.push(*items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permutations(items, k + 1, out);
            items.swap(k, i);
        }
    }
}
