//! Runtime protocol errors.

use causal_order::EntityId;

/// Hard errors from feeding an [`crate::Entity`] or routing through a
/// [`crate::ClusterMux`] — one enum, so mux and entity callers match on a
/// single type. Anything recoverable (duplicates, stale confirmations,
/// out-of-order arrivals) is handled internally and surfaces only in
/// [`crate::Metrics`].
///
/// Marked `#[non_exhaustive]`: handlers must keep a wildcard arm so
/// future error kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The PDU names a different cluster.
    WrongCluster {
        /// Expected cluster id.
        expected: u32,
        /// The PDU's cluster id.
        found: u32,
    },
    /// The PDU's source is not a member of the cluster.
    UnknownSource {
        /// The invalid source.
        src: EntityId,
        /// Cluster size.
        n: usize,
    },
    /// The PDU claims to come from this very entity (the network must not
    /// loop broadcasts back; indicates a mis-wired driver or forgery).
    LoopedBack,
    /// The PDU's confirmation vector has the wrong length.
    BadAckLength {
        /// Expected `n`.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// The submitted payload exceeds the configured maximum.
    PayloadTooLarge {
        /// Submitted size.
        size: usize,
        /// Configured limit.
        max: usize,
    },
    /// Too many payloads queued while the flow condition is closed.
    SubmitQueueFull {
        /// The configured bound.
        limit: usize,
    },
    /// An entity for this cluster id is already registered with the
    /// [`crate::ClusterMux`].
    DuplicateCluster {
        /// The conflicting id.
        cid: u32,
    },
    /// No entity serves this cluster id (mux routing failure).
    UnknownCluster {
        /// The unrecognized id.
        cid: u32,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::WrongCluster { expected, found } => {
                write!(f, "pdu for cluster {found}, this entity serves {expected}")
            }
            ProtocolError::UnknownSource { src, n } => {
                write!(f, "pdu from {src} outside cluster of {n}")
            }
            ProtocolError::LoopedBack => {
                write!(f, "received a pdu claiming to come from this entity")
            }
            ProtocolError::BadAckLength { expected, found } => {
                write!(
                    f,
                    "ack vector of length {found}, cluster has {expected} entities"
                )
            }
            ProtocolError::PayloadTooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds maximum {max}")
            }
            ProtocolError::SubmitQueueFull { limit } => {
                write!(
                    f,
                    "submit queue full ({limit} payloads waiting for the flow condition)"
                )
            }
            ProtocolError::DuplicateCluster { cid } => {
                write!(f, "an entity for cluster {cid} is already registered")
            }
            ProtocolError::UnknownCluster { cid } => {
                write!(f, "no entity serves cluster {cid}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ProtocolError::WrongCluster {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("cluster 2"));
        assert!(ProtocolError::UnknownSource {
            src: EntityId::new(9),
            n: 3
        }
        .to_string()
        .contains("E10"));
        assert!(ProtocolError::LoopedBack
            .to_string()
            .contains("this entity"));
        assert!(ProtocolError::BadAckLength {
            expected: 3,
            found: 1
        }
        .to_string()
        .contains("length 1"));
        assert!(ProtocolError::PayloadTooLarge { size: 10, max: 5 }
            .to_string()
            .contains("10 bytes"));
        assert!(ProtocolError::SubmitQueueFull { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(ProtocolError::DuplicateCluster { cid: 3 }
            .to_string()
            .contains('3'));
        assert!(ProtocolError::UnknownCluster { cid: 4 }
            .to_string()
            .contains('4'));
    }
}
