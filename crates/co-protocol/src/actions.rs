//! Outputs of the engine.

use bytes::Bytes;
use causal_order::{EntityId, Seq};
use co_wire::Pdu;

/// An effect the driver must carry out after an [`crate::Entity`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Broadcast this PDU to every other entity in the cluster.
    Broadcast(Pdu),
    /// Hand this message to the local application — it has reached the
    /// *acknowledged* stage (`ARL`) and is globally stable and causally
    /// ordered.
    Deliver(Delivery),
}

/// A message delivered to the application, in causal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The entity that broadcast the message.
    pub src: EntityId,
    /// Its per-source sequence number.
    pub seq: Seq,
    /// The ACK vector the source piggybacked on the PDU (§4.1): `ack[j]`
    /// is the next sequence number the source expected from `E_j` at
    /// broadcast time, so every `(j, s)` with `s < ack[j]` causally
    /// precedes this message. Oracle-facing metadata: external checkers
    /// (`co-check`) use it to validate causal ordering and the
    /// bit-identical-retransmission property (Lemma 4.2) without peeking
    /// into the engine.
    pub ack: Vec<Seq>,
    /// The application payload.
    pub data: Bytes,
}

impl std::fmt::Display for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deliver {}{} ({}B)", self.src, self.seq, self.data.len())
    }
}

/// What happened to a payload handed to [`crate::Entity::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The flow condition held; the PDU was broadcast immediately (its
    /// sequence number is included).
    Sent(Seq),
    /// The flow condition blocked transmission; the payload is queued and
    /// will be sent automatically once the window/buffer opens.
    Queued,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_display() {
        let d = Delivery {
            src: EntityId::new(0),
            seq: Seq::new(3),
            ack: vec![Seq::new(3), Seq::FIRST],
            data: Bytes::from_static(b"ab"),
        };
        assert_eq!(d.to_string(), "deliver E1#3 (2B)");
    }

    #[test]
    fn submit_outcome_variants_distinct() {
        assert_ne!(SubmitOutcome::Sent(Seq::FIRST), SubmitOutcome::Queued);
    }
}
