//! Outputs of the engine.

use bytes::Bytes;
use causal_order::{EntityId, Seq};
use co_wire::Pdu;

/// An effect the driver must carry out after an [`crate::Entity`] call.
///
/// Marked `#[non_exhaustive]`: drivers must keep a wildcard arm so future
/// action kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Broadcast this PDU to every other entity in the cluster.
    Broadcast(Pdu),
    /// Hand this message to the local application — it has reached the
    /// *acknowledged* stage (`ARL`) and is globally stable and causally
    /// ordered.
    Deliver(Delivery),
}

/// A message delivered to the application, in causal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The entity that broadcast the message.
    pub src: EntityId,
    /// Its per-source sequence number.
    pub seq: Seq,
    /// The ACK vector the source piggybacked on the PDU (§4.1): `ack[j]`
    /// is the next sequence number the source expected from `E_j` at
    /// broadcast time, so every `(j, s)` with `s < ack[j]` causally
    /// precedes this message. Oracle-facing metadata: external checkers
    /// (`co-check`) use it to validate causal ordering and the
    /// bit-identical-retransmission property (Lemma 4.2) without peeking
    /// into the engine.
    pub ack: Vec<Seq>,
    /// The application payload.
    pub data: Bytes,
}

impl std::fmt::Display for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deliver {}{} ({}B)", self.src, self.seq, self.data.len())
    }
}

/// Receives the [`Action`]s produced by an [`crate::Entity`] call, in
/// order.
///
/// This is the engine's single output interface: every entry point
/// (`on_pdu`, `submit_with`, `on_tick_with`) streams its actions into a
/// caller-supplied sink, so drivers choose between collecting
/// (`Vec<Action>` implements the trait — reuse one across calls for an
/// allocation-free receive path) and handling actions in place
/// ([`FnSink`]), without the engine buffering anything itself.
pub trait ActionSink {
    /// Accepts the next action. Called in the exact order the protocol
    /// produced them; sinks must preserve that order when forwarding.
    fn accept(&mut self, action: Action);
}

/// The collecting sink: appends each action.
impl ActionSink for Vec<Action> {
    #[inline]
    fn accept(&mut self, action: Action) {
        self.push(action);
    }
}

/// Forwarding: a mutable reference to a sink is a sink.
impl<S: ActionSink + ?Sized> ActionSink for &mut S {
    #[inline]
    fn accept(&mut self, action: Action) {
        (**self).accept(action);
    }
}

/// Adapts a closure into an [`ActionSink`], for drivers that dispatch
/// actions as they are produced instead of collecting them.
///
/// (A wrapper type rather than a blanket `impl` for closures so the
/// `Vec<Action>` impl and closure impls cannot conflict.)
#[derive(Debug, Clone, Copy)]
pub struct FnSink<F: FnMut(Action)>(pub F);

impl<F: FnMut(Action)> ActionSink for FnSink<F> {
    #[inline]
    fn accept(&mut self, action: Action) {
        (self.0)(action);
    }
}

/// What happened to a payload handed to [`crate::Entity::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The flow condition held; the PDU was broadcast immediately (its
    /// sequence number is included).
    Sent(Seq),
    /// The flow condition blocked transmission; the payload is queued and
    /// will be sent automatically once the window/buffer opens.
    Queued,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_display() {
        let d = Delivery {
            src: EntityId::new(0),
            seq: Seq::new(3),
            ack: vec![Seq::new(3), Seq::FIRST],
            data: Bytes::from_static(b"ab"),
        };
        assert_eq!(d.to_string(), "deliver E1#3 (2B)");
    }

    #[test]
    fn submit_outcome_variants_distinct() {
        assert_ne!(SubmitOutcome::Sent(Seq::FIRST), SubmitOutcome::Queued);
    }

    #[test]
    fn vec_and_fn_sinks_preserve_order() {
        let deliver = |seq: u64| {
            Action::Deliver(Delivery {
                src: EntityId::new(0),
                seq: Seq::new(seq),
                ack: vec![],
                data: Bytes::new(),
            })
        };
        let mut collected = Vec::new();
        collected.accept(deliver(1));
        collected.accept(deliver(2));
        assert_eq!(collected.len(), 2);

        let mut seen = Vec::new();
        let mut sink = FnSink(|a: Action| seen.push(a));
        sink.accept(deliver(1));
        sink.accept(deliver(2));
        assert_eq!(seen, collected);
    }
}
