//! The **causally ordering broadcast (CO) protocol** engine — the paper's
//! contribution (§4), implemented as a sans-IO state machine.
//!
//! Each [`Entity`] is one `E_i` of a cluster `C = ⟨E_1, …, E_n⟩`. It is
//! driven by three inputs —
//!
//! * [`Entity::submit`]: the application hands over a payload (the paper's
//!   *DT request* at the system SAP),
//! * [`Entity::on_pdu`]: a PDU received from the MC network,
//! * [`Entity::on_tick`]: the passage of time (deferred-confirmation and
//!   retransmission-retry timers) —
//!
//! and responds with [`Action`]s: PDUs to broadcast and messages to deliver
//! to the application, streamed into a caller-supplied [`ActionSink`]
//! (a plain `Vec<Action>` works; the `*_actions` wrappers collect into a
//! fresh one). No IO, no clocks, no threads inside; the same engine runs
//! on the `mc-net` simulator and the `co-transport` real-time runtime.
//!
//! # Observability
//!
//! Every protocol transition — acceptance, pre-acknowledgment, delivery,
//! F1/F2 loss detection, retransmission request and service, flow-window
//! transitions, CPI insertions — is also emitted as a structured
//! [`ProtocolEvent`] through the entity's [`Observer`] (the `co-observe`
//! crate, re-exported here). The default [`NoopObserver`] compiles the
//! whole event stream away; plug in an [`EventLog`], [`DigestObserver`],
//! latency tracker or custom sink with [`Entity::with_observer`].
//!
//! # Protocol walk-through
//!
//! A data PDU `p` from `E_j` moves through three stages at every entity
//! (§3's atomic-receipt levels):
//!
//! 1. **Acceptance** — `p.SEQ == REQ_j` (else it is buffered out-of-order
//!    and the gap is reclaimed by a selective `RET` request, §4.3). Accepted
//!    PDUs sit in the receipt log `RRL_j` and the piggybacked `p.ACK` vector
//!    updates the `AL` matrix.
//! 2. **Pre-acknowledgment** — once `p.SEQ < minAL_j` (every entity is known
//!    to have accepted `p`), `p` moves to the `PRL`, inserted in causal
//!    order by the CPI operation using Theorem 4.1's sequence-number test.
//! 3. **Acknowledgment** — once `p.SEQ < minPAL_j` (every entity is known to
//!    have *pre-acknowledged* `p`), `p` moves to the `ARL` and is delivered
//!    to the application ([`Action::Deliver`]).
//!
//! Because the CPI keeps the `PRL` causality-preserved and Propositions
//! 4.3/4.4 order the stage transitions, every application sees all messages
//! in a causality-preserving order — the **CO service** of §2.3.
//!
//! # Example
//!
//! Receiving a data PDU *accepts* it but does not deliver it — delivery
//! waits for the acknowledgment rounds (stage 3 above). Drive the
//! confirmation exchange to completion and the message reaches both
//! applications:
//!
//! ```
//! use bytes::Bytes;
//! use causal_order::EntityId;
//! use co_protocol::{Action, Config, DeferralPolicy, Entity};
//!
//! // A 2-entity cluster, wired by hand.
//! let config = |i| {
//!     Config::builder(0, 2, EntityId::new(i))
//!         .deferral(DeferralPolicy::Immediate)
//!         .build()
//! };
//! let mut e1 = Entity::new(config(0)?)?;
//! let mut e2 = Entity::new(config(1)?)?;
//!
//! let (_, actions) = e1.submit(Bytes::from_static(b"hi"), 0)?;
//! let mut queue: Vec<(u32, _)> = actions
//!     .into_iter()
//!     .filter_map(|a| match a {
//!         Action::Broadcast(p) => Some((1, p)), // (destination, pdu)
//!         _ => None,
//!     })
//!     .collect();
//! let mut deliveries = 0;
//! while let Some((to, pdu)) = queue.pop() {
//!     let (entity, other) = if to == 1 { (&mut e2, 0) } else { (&mut e1, 1) };
//!     let mut actions = Vec::new();
//!     entity.on_pdu(pdu, 1_000, &mut actions)?;
//!     for a in actions {
//!         match a {
//!             Action::Broadcast(p) => queue.push((other, p)),
//!             Action::Deliver(d) => {
//!                 assert_eq!(&d.data[..], b"hi");
//!                 deliveries += 1;
//!             }
//!             _ => {} // Action is #[non_exhaustive]
//!         }
//!     }
//! }
//! assert_eq!(deliveries, 2, "delivered at the receiver and the sender");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod co_core;
mod config;
mod core;
mod cpi;
mod entity;
mod error;
mod flow;
mod hybrid;
mod logs;
mod matrix;
mod metrics;
mod mux;
mod reorder;
mod sender;
mod snapshot;

pub use actions::{Action, ActionSink, Delivery, FnSink, SubmitOutcome};
pub use co_core::CoCore;
pub use config::{Config, ConfigBuilder, ConfigError, DeferralPolicy, RetransmissionPolicy};
pub use core::{DeliveryCore, Guarantee, MAX_QUEUED_SUBMITS};
pub use cpi::CausalLog;
pub use entity::{BatchOutcome, Entity};
pub use error::ProtocolError;
pub use flow::{flow_limit, FlowDecision};
pub use hybrid::{HybridCore, HybridState};
pub use logs::{ReceiptLogs, SendLog};
pub use matrix::KnowledgeMatrix;
pub use metrics::Metrics;
pub use mux::ClusterMux;
pub use reorder::ReorderBuffer;
pub use sender::{SenderCore, SenderState};
pub use snapshot::{EntitySnapshot, EntityState};

/// Re-export of the wire-level PDU types the engine consumes and produces.
pub use co_wire::{AckOnlyPdu, DataPdu, Pdu, PduKind, RetPdu};

/// Re-export of the observability layer: the structured event stream the
/// engine emits and the observers that consume it.
pub use co_observe::{DigestObserver, EventLog, NoopObserver, Observer, ProtocolEvent, Tee};
