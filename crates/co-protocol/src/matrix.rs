//! The `AL` and `PAL` knowledge matrices (§4.1, §4.4, §4.5).
//!
//! `AL[k][j]` is "the sequence number of a PDU which `E_i` knows that `E_j`
//! expects to receive next from `E_k`" — one row per *source* `k`, one
//! column per *observer* `j`. `minAL_k` (the row minimum) is the highest
//! sequence number below which **every** entity is known to have accepted
//! `E_k`'s PDUs; the PACK condition is `p.SEQ < minAL_k`.
//!
//! `PAL` has the same shape but tracks *pre-acknowledgment* knowledge, and
//! `minPAL_k` drives the ACK condition.
//!
//! All updates are **monotonic** (component-wise max): retransmitted PDUs
//! carry their original, older `ACK` vectors (Lemma 4.2 depends on
//! retransmissions being bit-identical), and folding an old vector in must
//! never move knowledge backwards.
//!
//! # Layout
//!
//! Storage is **lane-major**: `cells[observer * n + source]`, one
//! contiguous `u64`-word *lane* per observer. Every bulk mutation the
//! protocol performs writes along an observer lane ([`fold_column`] folds
//! one peer's confirmation vector in) or streams all lanes in source order
//! ([`raise_rows`] adopts an `AckOnly` frontier), so the hot path walks
//! word-adjacent memory the CPU can prefetch and auto-vectorize instead of
//! touching `n` cache lines `n` words apart. At `n = 256` a fold visits
//! 32 cache lines (2 KiB lane) instead of 256 lines spread over a 512 KiB
//! matrix — the layout change that recovered the `accept_in_order/256`
//! regression.
//!
//! # Cost model: dirty-lane lazy minima
//!
//! Row minima are cached, and the cache is maintained **lazily** with
//! lane-granular dirty bits — a bulk mutation never rescans anything, and
//! never even touches per-row bookkeeping:
//!
//! * [`fold_column`] is a pure branchless component-wise max over one lane
//!   (the same inner loop a cache-less matrix would run) plus a single
//!   dirty bit set on that lane;
//! * each row caches its minimum (`mins`) and the lane that held it at the
//!   last resolution (`holder`). A row's cached minimum is trustworthy
//!   exactly while its holder lane is clean: folds into *other* lanes
//!   cannot raise the holder cell, so the minimum provably stands. Only
//!   `holder[k]` being dirty makes row `k` *possibly stale* — its cached
//!   minimum is then still a valid lower bound (monotonicity), just maybe
//!   overtaken;
//! * [`flush`] re-resolves every possibly-stale row at once, at a point
//!   the *caller* chooses (the engine flushes once per PDU, batched
//!   acceptance once per batch), then clears all lane dirt: a handful of
//!   stale rows get individual strided rescans, while a large batch
//!   (≥ n/4 rows, as after adopting a far-ahead frontier) is recomputed
//!   with one *sequential* whole-matrix pass — the same streaming shape as
//!   the mutations that dirtied it. Rescans pick the new holder from a
//!   clean lane when one ties for the minimum, so a busy observer folding
//!   over and over doesn't force wasted rescans of rows whose minimum also
//!   lives elsewhere;
//! * [`row_min`] — O(1) for rows with a clean holder, and still *exact*
//!   for possibly-stale ones (it recomputes on the fly without touching
//!   the cache), so interleaved reads never require a flush for
//!   correctness, only for speed. [`row_mins`] returns the cached slice
//!   and therefore does demand a fully clean matrix (debug-asserted) —
//!   flush first;
//! * [`raise`] / [`raise_row`] stay eagerly exact (single-row operations
//!   where deferral buys nothing); [`raise_rows`] — the batched frontier
//!   adoption — flushes, then lifts every row in one sequential pass over
//!   the whole matrix, replacing n strided row walks.
//!
//! Rows whose minimum moved since the last drain are tracked in a
//! **dirty-source set** ([`drain_dirty_into`], which flushes first),
//! letting the engine's PACK/ACK sweep visit only sources whose
//! `minAL`/`minPAL` actually changed instead of all `n` on every event. A
//! [`version`] counter (bumped on every row-minimum change, at resolution
//! time) gives callers an O(1) "did any frontier move?" check over flushed
//! state.
//!
//! [`fold_column`]: KnowledgeMatrix::fold_column
//! [`raise`]: KnowledgeMatrix::raise
//! [`raise_row`]: KnowledgeMatrix::raise_row
//! [`raise_rows`]: KnowledgeMatrix::raise_rows
//! [`row_min`]: KnowledgeMatrix::row_min
//! [`row_mins`]: KnowledgeMatrix::row_mins
//! [`drain_dirty_into`]: KnowledgeMatrix::drain_dirty_into
//! [`flush`]: KnowledgeMatrix::flush
//! [`version`]: KnowledgeMatrix::version

use causal_order::{EntityId, Seq};

/// How many possibly-stale rows trigger the sequential whole-matrix
/// recompute instead of per-row strided rescans (denominator of n).
const FULL_RESCAN_DIVISOR: usize = 4;

/// A dense `n × n` matrix of sequence-number knowledge with monotonic
/// updates, lazily cached row minima and dirty-row change tracking.
#[derive(Debug, Clone)]
pub struct KnowledgeMatrix {
    n: usize,
    /// Lane-major: `cells[observer * n + source]`.
    cells: Vec<Seq>,
    /// Cached row minima, index-aligned with rows (sources). Exact while
    /// the row's holder lane is clean; a lower bound otherwise.
    mins: Vec<Seq>,
    /// For each row, the lane (observer) whose cell held the minimum at
    /// the last resolution. While that lane is clean, no mutation can have
    /// raised the cell, so the cached minimum provably still stands.
    holder: Vec<u32>,
    /// Per-lane dirty bit: set by any fold that changed the lane, cleared
    /// by [`KnowledgeMatrix::flush`].
    lane_dirty: Vec<bool>,
    /// `true` iff any lane-dirty bit is set (the clean fast-path check).
    any_lane_dirty: bool,
    /// `true` for rows whose minimum changed since the last drain.
    dirty: Vec<bool>,
    /// Queue of dirty row indices (deduplicated through `dirty`).
    dirty_rows: Vec<u32>,
    /// Bumped every time any row minimum changes.
    version: u64,
    /// Scratch for the sequential whole-matrix rescan (candidate minima).
    scratch_min: Vec<Seq>,
    /// Scratch for the sequential whole-matrix rescan (candidate holders).
    scratch_holder: Vec<u32>,
}

impl KnowledgeMatrix {
    /// Creates an `n × n` matrix with every cell at [`Seq::FIRST`] (nothing
    /// accepted anywhere, matching Example 4.1's "initially `REQ_j = 1`").
    pub fn new(n: usize) -> Self {
        KnowledgeMatrix {
            n,
            cells: vec![Seq::FIRST; n * n],
            mins: vec![Seq::FIRST; n],
            holder: vec![0; n],
            lane_dirty: vec![false; n],
            any_lane_dirty: false,
            dirty: vec![false; n],
            dirty_rows: Vec::with_capacity(n),
            version: 0,
            scratch_min: vec![Seq::FIRST; n],
            scratch_holder: vec![0; n],
        }
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cell for (`source`, `observer`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, source: EntityId, observer: EntityId) -> Seq {
        self.cells[observer.index() * self.n + source.index()]
    }

    /// Monotonically raises the cell for (`source`, `observer`) to `value`
    /// (no-op if the cell is already at least `value`). Returns `true` if
    /// the cell changed.
    ///
    /// O(1) unless the raised cell was the row's recorded minimum holder,
    /// in which case that one row is rescanned immediately — unlike
    /// [`fold_column`](KnowledgeMatrix::fold_column), a single-cell raise
    /// never defers (there is nothing to batch).
    pub fn raise(&mut self, source: EntityId, observer: EntityId, value: Seq) -> bool {
        let k = source.index();
        let j = observer.index();
        let idx = j * self.n + k;
        let old = self.cells[idx];
        if value <= old {
            return false;
        }
        self.cells[idx] = value;
        if self.holder[k] == j as u32 {
            self.rescan_row(k);
        }
        true
    }

    /// Folds a whole confirmation vector from `observer` in: for every
    /// source `k`, `cell[k][observer] = max(cell, vector[k])`. Returns
    /// `true` if anything changed.
    ///
    /// One sequential, branchless walk over the observer's lane — no row
    /// bookkeeping at all, just a dirty bit on the lane if anything grew.
    /// Rows whose minimum lived in this lane are resolved together at the
    /// next [`flush`] (or exactly, on the fly, by [`row_min`]).
    ///
    /// [`flush`]: KnowledgeMatrix::flush
    /// [`row_min`]: KnowledgeMatrix::row_min
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != n`.
    #[inline]
    pub fn fold_column(&mut self, observer: EntityId, vector: &[Seq]) -> bool {
        assert_eq!(vector.len(), self.n, "confirmation vector length mismatch");
        let j = observer.index();
        let lane = &mut self.cells[j * self.n..(j + 1) * self.n];
        let mut changed = false;
        for (cell, &value) in lane.iter_mut().zip(vector) {
            let old = *cell;
            let grew = value > old;
            *cell = if grew { value } else { old };
            changed |= grew;
        }
        if changed {
            self.lane_dirty[j] = true;
            self.any_lane_dirty = true;
        }
        changed
    }

    /// Monotonically raises **every** cell of `source`'s row to at least
    /// `value` (the AckOnly `acked`-adoption rule: the sender asserts all
    /// entities pre-acknowledged `source`'s PDUs below `value`). Returns
    /// `true` if anything changed. O(n) strided with a direct O(1) min
    /// update (the new row minimum is simply `max(old minimum, value)`);
    /// a possibly-stale row is rescanned first so the update stays exact.
    ///
    /// To lift many rows at once, prefer [`raise_rows`], which streams the
    /// matrix sequentially instead of striding per row.
    ///
    /// [`raise_rows`]: KnowledgeMatrix::raise_rows
    pub fn raise_row(&mut self, source: EntityId, value: Seq) -> bool {
        let k = source.index();
        if value <= self.mins[k] {
            // Every cell is already >= the row minimum >= value (for a
            // possibly-stale row the cached minimum is a lower bound, so
            // this no-op test is still sound).
            return false;
        }
        if self.lane_dirty[self.holder[k] as usize] {
            self.rescan_row(k);
            if value <= self.mins[k] {
                return false;
            }
        }
        let KnowledgeMatrix {
            n,
            cells,
            lane_dirty,
            ..
        } = self;
        let n = *n;
        let mut first_eq = u32::MAX;
        let mut first_clean_eq = u32::MAX;
        for j in 0..n {
            let cell = &mut cells[j * n + k];
            if *cell < value {
                *cell = value;
            }
            if *cell == value {
                if first_eq == u32::MAX {
                    first_eq = j as u32;
                }
                if first_clean_eq == u32::MAX && !lane_dirty[j] {
                    first_clean_eq = j as u32;
                }
            }
        }
        // value > (exact) old minimum, so the old-min cell was raised to
        // exactly `value` — some holder candidate must exist.
        debug_assert_ne!(first_eq, u32::MAX, "new minimum must be attained");
        self.holder[k] = if first_clean_eq != u32::MAX {
            first_clean_eq
        } else {
            first_eq
        };
        self.mins[k] = value;
        self.note_dirty(k);
        true
    }

    /// Batched [`raise_row`] for the whole matrix: lifts row `k` to at
    /// least `values[k]` for every source at once. Returns `true` if any
    /// row minimum moved.
    ///
    /// One *sequential* pass over all lanes (plus O(n) pre/post work on
    /// the cached minima, after a [`flush`]) — the cache-friendly
    /// replacement for n strided row walks when adopting a full `AckOnly`
    /// frontier.
    ///
    /// [`raise_row`]: KnowledgeMatrix::raise_row
    /// [`flush`]: KnowledgeMatrix::flush
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    pub fn raise_rows(&mut self, values: &[Seq]) -> bool {
        assert_eq!(values.len(), self.n, "frontier vector length mismatch");
        if values
            .iter()
            .zip(&self.mins)
            .all(|(&value, &min)| value <= min)
        {
            // Sound even with possibly-stale rows: cached minima are
            // lower bounds.
            return false;
        }
        self.flush();
        // A row's new minimum is max(old, value): if value exceeds the old
        // minimum, some cell sat at the old minimum and is raised to
        // exactly `value`, and no cell ends below `value`.
        for (target, (&min, &value)) in self
            .scratch_min
            .iter_mut()
            .zip(self.mins.iter().zip(values))
        {
            *target = min.max(value);
        }
        self.scratch_holder.fill(u32::MAX);
        for (j, lane) in self.cells.chunks_exact_mut(self.n).enumerate() {
            for (k, cell) in lane.iter_mut().enumerate() {
                let raised = (*cell).max(values[k]);
                *cell = raised;
                if raised == self.scratch_min[k] && self.scratch_holder[k] == u32::MAX {
                    self.scratch_holder[k] = j as u32;
                }
            }
        }
        let mut changed = false;
        for k in 0..self.n {
            debug_assert_ne!(self.scratch_holder[k], u32::MAX, "minimum must be attained");
            self.holder[k] = self.scratch_holder[k];
            if self.scratch_min[k] > self.mins[k] {
                self.mins[k] = self.scratch_min[k];
                self.note_dirty(k);
                changed = true;
            }
        }
        changed
    }

    /// The row minimum for `source` — the paper's `minAL_k` / `minPAL_k`.
    /// Always exact: O(1) for a row whose holder lane is clean; a
    /// possibly-stale row (folds dirtied the lane holding its minimum
    /// since the last [`flush`]) is recomputed on the fly without touching
    /// the cache.
    ///
    /// [`flush`]: KnowledgeMatrix::flush
    #[inline]
    pub fn row_min(&self, source: EntityId) -> Seq {
        let k = source.index();
        if !self.lane_dirty[self.holder[k] as usize] {
            return self.mins[k];
        }
        (0..self.n)
            .map(|j| self.cells[j * self.n + k])
            .min()
            .expect("n >= 1")
    }

    /// The full vector of row minima (`⟨minAL_1, …, minAL_n⟩`), used as the
    /// pre-ack frontier advertised in `AckOnly` PDUs. O(1),
    /// allocation-free: returns the cached slice, which is only exact when
    /// the matrix is clean — call [`flush`] after mutating.
    ///
    /// [`flush`]: KnowledgeMatrix::flush
    pub fn row_mins(&self) -> &[Seq] {
        debug_assert!(!self.any_lane_dirty, "row_mins read without flush()");
        &self.mins
    }

    /// Re-resolves every possibly-stale row's cached minimum and clears
    /// all lane dirt: strided per-row rescans while few rows are affected,
    /// one sequential whole-matrix pass once enough are that striding
    /// would touch more cache lines than streaming. O(1) when no lane is
    /// dirty, O(n) when dirty lanes hold no row minima.
    ///
    /// Mutating calls leave the cache lazily out of date instead of paying
    /// for rescans inline ([`fold_column`] in particular is a pure
    /// streaming walk); the engine flushes once per PDU — or once per
    /// *batch* — before reading frontiers, which is where the deferral
    /// pays off.
    ///
    /// [`fold_column`]: KnowledgeMatrix::fold_column
    pub fn flush(&mut self) {
        if !self.any_lane_dirty {
            return;
        }
        let stale = (0..self.n)
            .filter(|&k| self.lane_dirty[self.holder[k] as usize])
            .count();
        if stale >= self.n.div_ceil(FULL_RESCAN_DIVISOR) {
            // One sequential pass: candidate minimum and holder per row.
            self.scratch_min.copy_from_slice(&self.cells[..self.n]);
            self.scratch_holder.fill(0);
            for (j, lane) in self.cells[self.n..].chunks_exact(self.n).enumerate() {
                for (k, &cell) in lane.iter().enumerate() {
                    if cell < self.scratch_min[k] {
                        self.scratch_min[k] = cell;
                        self.scratch_holder[k] = (j + 1) as u32;
                    }
                }
            }
            for k in 0..self.n {
                if self.lane_dirty[self.holder[k] as usize] {
                    self.holder[k] = self.scratch_holder[k];
                    debug_assert!(self.scratch_min[k] >= self.mins[k], "minima are monotonic");
                    if self.scratch_min[k] > self.mins[k] {
                        self.mins[k] = self.scratch_min[k];
                        self.note_dirty(k);
                    }
                }
            }
        } else if stale > 0 {
            for k in 0..self.n {
                if self.lane_dirty[self.holder[k] as usize] {
                    self.rescan_row(k);
                }
            }
        }
        self.lane_dirty.fill(false);
        self.any_lane_dirty = false;
    }

    /// A counter bumped every time any row minimum changes; two equal
    /// versions imply identical [`row_mins`] (minima are monotonic, so no
    /// ABA). Lets callers compare frontiers in O(1). Reflects *flushed*
    /// state: mutations whose rescan is still deferred have not bumped it
    /// yet.
    ///
    /// [`row_mins`]: KnowledgeMatrix::row_mins
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether any row minimum *may* have changed since the last
    /// [`drain_dirty_into`](KnowledgeMatrix::drain_dirty_into): resolved
    /// changes, plus possibly-stale rows whose deferred rescan hasn't run
    /// yet (those may turn out unchanged — this is a conservative check).
    pub fn has_dirty(&self) -> bool {
        !self.dirty_rows.is_empty()
            || (self.any_lane_dirty
                && (0..self.n).any(|k| self.lane_dirty[self.holder[k] as usize]))
    }

    /// Moves the indices of rows whose minimum changed since the last drain
    /// into `out` (appended; `out` is *not* cleared) and resets the dirty
    /// set. Flushes first, so deferred minimum changes are included.
    /// Allocation-free when `out` has capacity for `n` entries.
    pub fn drain_dirty_into(&mut self, out: &mut Vec<u32>) {
        self.flush();
        for &k in &self.dirty_rows {
            self.dirty[k as usize] = false;
        }
        out.append(&mut self.dirty_rows);
    }

    /// Recomputes one row's cached minimum and holder by a strided scan.
    /// The minimum may turn out unchanged (the raise that triggered the
    /// rescan only displaced *one* of several minimum-holding cells); the
    /// row is marked dirty only if it actually moved.
    fn rescan_row(&mut self, k: usize) {
        let mut min = self.cells[k];
        let mut holder = 0u32;
        for j in 1..self.n {
            let cell = self.cells[j * self.n + k];
            if cell < min {
                min = cell;
                holder = j as u32;
            }
        }
        // Prefer a minimum-holding cell in a clean lane, so a busy
        // observer folding repeatedly doesn't force wasted rescans of rows
        // whose minimum also lives elsewhere.
        if self.any_lane_dirty && self.lane_dirty[holder as usize] {
            for j in 0..self.n {
                if !self.lane_dirty[j] && self.cells[j * self.n + k] == min {
                    holder = j as u32;
                    break;
                }
            }
        }
        self.holder[k] = holder;
        debug_assert!(min >= self.mins[k], "minima are monotonic");
        if min > self.mins[k] {
            self.mins[k] = min;
            self.note_dirty(k);
        }
    }

    fn note_dirty(&mut self, k: usize) {
        self.version += 1;
        if !self.dirty[k] {
            self.dirty[k] = true;
            self.dirty_rows.push(k as u32);
        }
    }
}

/// Equality is *knowledge* equality: same cluster size and cells. The
/// change-tracking bookkeeping (version, dirty set, deferred rescans) is
/// history-dependent — two matrices reached by reordered commutative folds
/// must still compare equal.
impl PartialEq for KnowledgeMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.cells == other.cells
    }
}

impl Eq for KnowledgeMatrix {}

impl std::fmt::Display for KnowledgeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for k in 0..self.n {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.cells[j * self.n + k].get())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn seqs(v: &[u64]) -> Vec<Seq> {
        v.iter().copied().map(Seq::new).collect()
    }

    /// Freshly recomputed row minimum, for cross-checking the cache.
    fn fresh_min(m: &KnowledgeMatrix, k: u32) -> Seq {
        (0..m.n())
            .map(|j| m.get(e(k), e(j as u32)))
            .min()
            .expect("n >= 1")
    }

    /// Deterministic long-run stress: a quarter-million random
    /// raise/fold/raise-row/flush operations, cross-checking every cached
    /// row minimum against a fresh recompute after each one. The proptest
    /// twin (`tests/proptest_protocol.rs`) explores shapes; this pins a
    /// deep deterministic trajectory in the plain test suite.
    #[test]
    fn stress_cached_minima_stay_exact() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 3, 5, 8] {
            let mut m = KnowledgeMatrix::new(n);
            for _ in 0..8_000 {
                match rng() % 5 {
                    0 => {
                        let src = e((rng() % n as u64) as u32);
                        let obs = e((rng() % n as u64) as u32);
                        m.raise(src, obs, Seq::new(rng() % 64 + 1));
                    }
                    1 => {
                        let obs = e((rng() % n as u64) as u32);
                        let vector: Vec<Seq> = (0..n).map(|_| Seq::new(rng() % 64 + 1)).collect();
                        m.fold_column(obs, &vector);
                    }
                    2 => {
                        let src = e((rng() % n as u64) as u32);
                        m.raise_row(src, Seq::new(rng() % 64 + 1));
                    }
                    3 => {
                        let values: Vec<Seq> = (0..n).map(|_| Seq::new(rng() % 64 + 1)).collect();
                        m.raise_rows(&values);
                    }
                    _ => m.flush(),
                }
                for k in 0..n as u32 {
                    assert_eq!(m.row_min(e(k)), fresh_min(&m, k), "n={n} row {k}");
                }
            }
            m.flush();
            for k in 0..n as u32 {
                assert_eq!(m.row_mins()[k as usize], fresh_min(&m, k));
            }
        }
    }

    #[test]
    fn starts_at_first() {
        let m = KnowledgeMatrix::new(3);
        assert_eq!(m.get(e(0), e(2)), Seq::FIRST);
        assert_eq!(m.row_min(e(1)), Seq::FIRST);
        assert_eq!(m.n(), 3);
        assert_eq!(m.version(), 0);
        assert!(!m.has_dirty());
    }

    #[test]
    fn raise_is_monotonic() {
        let mut m = KnowledgeMatrix::new(2);
        assert!(m.raise(e(0), e(1), Seq::new(5)));
        assert!(!m.raise(e(0), e(1), Seq::new(3)), "must not regress");
        assert_eq!(m.get(e(0), e(1)), Seq::new(5));
        assert!(!m.raise(e(0), e(1), Seq::new(5)), "equal is a no-op");
    }

    #[test]
    fn fold_column_updates_one_observer() {
        let mut m = KnowledgeMatrix::new(3);
        assert!(m.fold_column(e(1), &seqs(&[3, 1, 2])));
        assert_eq!(m.get(e(0), e(1)), Seq::new(3));
        assert_eq!(m.get(e(1), e(1)), Seq::new(1));
        assert_eq!(m.get(e(2), e(1)), Seq::new(2));
        // Other observers untouched.
        assert_eq!(m.get(e(0), e(0)), Seq::FIRST);
        // Stale vector changes nothing.
        assert!(!m.fold_column(e(1), &seqs(&[2, 1, 1])));
    }

    #[test]
    fn row_min_is_pack_threshold() {
        // Example 4.1: after accepting a,b,c,d the AL row for E1 is
        // [3, 3, 2] (own REQ_1 = 3, d told us 3, b told us 2)... the row
        // minimum 2 makes exactly a (seq 1) pre-acknowledgeable.
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[3, 2, 2]));
        m.fold_column(e(1), &seqs(&[3, 1, 2]));
        m.fold_column(e(2), &seqs(&[2, 1, 1]));
        assert_eq!(m.row_min(e(0)), Seq::new(2));
        // a.SEQ = 1 < 2 → pre-acknowledged; c.SEQ = 2 not yet.
        assert!(Seq::new(1) < m.row_min(e(0)));
        assert!(Seq::new(2) >= m.row_min(e(0)));
    }

    #[test]
    fn row_mins_vector() {
        let mut m = KnowledgeMatrix::new(2);
        m.fold_column(e(0), &seqs(&[4, 7]));
        m.fold_column(e(1), &seqs(&[2, 9]));
        m.flush();
        assert_eq!(m.row_mins(), &seqs(&[2, 7])[..]);
    }

    #[test]
    fn row_min_exact_without_flush() {
        // Folds defer cache maintenance, but row_min must stay exact even
        // before any flush (it recomputes possibly-stale rows on the fly).
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[4, 3, 5]));
        m.fold_column(e(1), &seqs(&[2, 6, 5]));
        m.fold_column(e(2), &seqs(&[3, 3, 2]));
        for k in 0..3 {
            assert_eq!(m.row_min(e(k)), fresh_min(&m, k), "row {k}");
        }
        // Flushing doesn't change the answer, only the cache.
        m.flush();
        for k in 0..3 {
            assert_eq!(m.row_min(e(k)), fresh_min(&m, k), "row {k}");
        }
        assert_eq!(m.row_mins(), &seqs(&[2, 3, 2])[..]);
    }

    #[test]
    fn cached_minima_track_raises() {
        let mut m = KnowledgeMatrix::new(3);
        // Raise cells one by one; cached minimum must always match a fresh
        // recomputation, including when the minimum-holding cell moves.
        let updates = [
            (0, 0, 4),
            (0, 1, 2),
            (0, 2, 2), // min now 2 (held twice)
            (0, 1, 5), // min stays 2 (one holder left)
            (0, 2, 3), // last minimal cell raised → rescan → min 3
            (1, 0, 9),
            (2, 2, 7),
        ];
        for (k, j, v) in updates {
            m.raise(e(k), e(j), Seq::new(v));
            for row in 0..3 {
                assert_eq!(m.row_min(e(row)), fresh_min(&m, row), "row {row}");
            }
        }
        assert_eq!(m.row_min(e(0)), Seq::new(3));
    }

    #[test]
    fn cached_minima_track_folds() {
        // Folds drive the deferred (flush-time) rescan path; cross-check
        // the cache against fresh recomputation after every fold+flush,
        // with enough rows going stale at once to trigger the sequential
        // full rescan, and interleave unflushed reads to exercise the
        // on-the-fly path.
        let n = 8;
        let mut m = KnowledgeMatrix::new(n);
        let folds: Vec<(u32, Vec<u64>)> = (0..40)
            .map(|t| {
                let j = (t * 5 % n as u64) as u32;
                let vec = (0..n as u64).map(|k| 1 + (t + k * 3) % 17).collect();
                (j, vec)
            })
            .collect();
        for (i, (j, vec)) in folds.into_iter().enumerate() {
            m.fold_column(e(j), &seqs(&vec));
            // Exact before the flush...
            for row in 0..n as u32 {
                assert_eq!(m.row_min(e(row)), fresh_min(&m, row), "row {row}");
            }
            // ...and flush every few folds so stale rows accumulate enough
            // to take the whole-matrix recompute path too.
            if i % 3 == 0 {
                m.flush();
                for row in 0..n as u32 {
                    assert_eq!(m.row_min(e(row)), fresh_min(&m, row), "row {row}");
                }
            }
        }
        m.flush();
        for (row, &min) in m.row_mins().iter().enumerate() {
            assert_eq!(min, fresh_min(&m, row as u32), "row {row}");
        }
    }

    #[test]
    fn raise_row_lifts_whole_row() {
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(1), &seqs(&[5, 1, 1]));
        assert!(m.raise_row(e(0), Seq::new(3)));
        assert_eq!(m.get(e(0), e(0)), Seq::new(3));
        assert_eq!(m.get(e(0), e(1)), Seq::new(5), "higher cells keep value");
        assert_eq!(m.get(e(0), e(2)), Seq::new(3));
        assert_eq!(m.row_min(e(0)), Seq::new(3));
        assert_eq!(m.row_min(e(0)), fresh_min(&m, 0));
        // Raising below the current minimum is a no-op.
        assert!(!m.raise_row(e(0), Seq::new(2)));
    }

    #[test]
    fn raise_row_resolves_stale_row_first() {
        let mut m = KnowledgeMatrix::new(2);
        // Both cells of row 0 grow past the cached minimum of 1 with the
        // rescans deferred.
        m.fold_column(e(0), &seqs(&[5, 1]));
        m.fold_column(e(1), &seqs(&[4, 1]));
        // True min is 4; raising to 3 must be a no-op despite the stale
        // cached minimum of 1.
        assert!(!m.raise_row(e(0), Seq::new(3)));
        assert_eq!(m.row_min(e(0)), Seq::new(4));
        assert!(m.raise_row(e(0), Seq::new(6)));
        assert_eq!(m.row_min(e(0)), Seq::new(6));
        assert_eq!(m.row_min(e(0)), fresh_min(&m, 0));
    }

    #[test]
    fn raise_rows_matches_per_row_raises() {
        let n = 5;
        let mut batched = KnowledgeMatrix::new(n);
        let mut one_by_one = KnowledgeMatrix::new(n);
        for m in [&mut batched, &mut one_by_one] {
            m.fold_column(e(1), &seqs(&[5, 1, 4, 2, 9]));
            m.fold_column(e(3), &seqs(&[2, 6, 1, 1, 3]));
        }
        let frontier = seqs(&[3, 1, 7, 2, 4]);
        let mut changed = false;
        for (k, &value) in frontier.iter().enumerate() {
            changed |= one_by_one.raise_row(e(k as u32), value);
        }
        assert_eq!(batched.raise_rows(&frontier), changed);
        assert_eq!(batched, one_by_one);
        batched.flush();
        one_by_one.flush();
        assert_eq!(batched.row_mins(), one_by_one.row_mins());
        for k in 0..n as u32 {
            assert_eq!(batched.row_min(e(k)), fresh_min(&batched, k));
        }
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        batched.drain_dirty_into(&mut d1);
        one_by_one.drain_dirty_into(&mut d2);
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "same rows reported dirty");
        // A frontier at-or-below every row minimum is a no-op.
        assert!(!batched.raise_rows(&seqs(&[1, 1, 1, 1, 1])));
    }

    #[test]
    fn dirty_rows_report_min_changes_once() {
        let mut m = KnowledgeMatrix::new(2);
        let mut dirty = Vec::new();
        // Raising one cell of a 2-cell row leaves the min unchanged.
        m.raise(e(0), e(0), Seq::new(3));
        m.drain_dirty_into(&mut dirty);
        assert!(dirty.is_empty(), "min did not move");
        // Raising the other cell moves the min → row 0 dirty, deduplicated.
        m.raise(e(0), e(1), Seq::new(2));
        m.raise(e(0), e(1), Seq::new(3));
        assert!(m.has_dirty());
        m.drain_dirty_into(&mut dirty);
        assert_eq!(dirty, vec![0]);
        assert!(!m.has_dirty());
        // Drained: no re-report without a new change.
        dirty.clear();
        m.drain_dirty_into(&mut dirty);
        assert!(dirty.is_empty());
    }

    #[test]
    fn drain_includes_deferred_min_changes() {
        let mut m = KnowledgeMatrix::new(2);
        // Both cells of row 0 leave the minimum; the rescan is deferred,
        // but the drain must still report the row (it flushes first).
        m.fold_column(e(0), &seqs(&[3, 1]));
        m.fold_column(e(1), &seqs(&[2, 1]));
        assert!(m.has_dirty(), "deferred min change counts as dirty");
        let mut dirty = Vec::new();
        m.drain_dirty_into(&mut dirty);
        assert_eq!(dirty, vec![0]);
        assert_eq!(m.row_mins(), &seqs(&[2, 1])[..]);
    }

    #[test]
    fn version_tracks_frontier_changes_only() {
        let mut m = KnowledgeMatrix::new(2);
        let v0 = m.version();
        m.raise(e(0), e(0), Seq::new(5)); // min unchanged (other cell at 1)
        assert_eq!(m.version(), v0);
        m.raise(e(0), e(1), Seq::new(4)); // min 1 → 4
        assert!(m.version() > v0);
    }

    #[test]
    fn equality_ignores_change_tracking_history() {
        let mut a = KnowledgeMatrix::new(2);
        let mut b = KnowledgeMatrix::new(2);
        // Same knowledge, reached through different update orders.
        a.fold_column(e(0), &seqs(&[4, 2]));
        a.fold_column(e(1), &seqs(&[1, 5]));
        b.fold_column(e(1), &seqs(&[1, 5]));
        b.fold_column(e(0), &seqs(&[4, 2]));
        let mut sink = Vec::new();
        a.drain_dirty_into(&mut sink);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_wrong_length_panics() {
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[1, 1]));
    }

    #[test]
    fn display_renders_rows() {
        let mut m = KnowledgeMatrix::new(2);
        m.raise(e(0), e(1), Seq::new(4));
        assert_eq!(m.to_string(), "[1 4]\n[1 1]");
    }
}
