//! The `AL` and `PAL` knowledge matrices (§4.1, §4.4, §4.5).
//!
//! `AL[k][j]` is "the sequence number of a PDU which `E_i` knows that `E_j`
//! expects to receive next from `E_k`" — one row per *source* `k`, one
//! column per *observer* `j`. `minAL_k` (the row minimum) is the highest
//! sequence number below which **every** entity is known to have accepted
//! `E_k`'s PDUs; the PACK condition is `p.SEQ < minAL_k`.
//!
//! `PAL` has the same shape but tracks *pre-acknowledgment* knowledge, and
//! `minPAL_k` drives the ACK condition.
//!
//! All updates are **monotonic** (component-wise max): retransmitted PDUs
//! carry their original, older `ACK` vectors (Lemma 4.2 depends on
//! retransmissions being bit-identical), and folding an old vector in must
//! never move knowledge backwards.
//!
//! # Cost model
//!
//! Row minima are cached and maintained incrementally, so the protocol's
//! hot path (§5's "ordering computation" advantage over ISIS CBCAST) never
//! rescans the matrix:
//!
//! * [`KnowledgeMatrix::row_min`] / [`KnowledgeMatrix::row_mins`] — O(1),
//!   allocation-free (the full-vector accessor returns a cached slice);
//! * [`KnowledgeMatrix::raise`] — O(1) unless the raise removes the row's
//!   *last* minimal cell, in which case that one row is rescanned (O(n)).
//!   Each rescan strictly increases the row minimum, so over any workload
//!   the rescan cost is bounded by the number of distinct minimum values
//!   the row passes through — O(1) amortized for steady sequence traffic;
//! * [`KnowledgeMatrix::fold_column`] — O(n) raises (one per row), each
//!   O(1) amortized as above;
//! * [`KnowledgeMatrix::raise_row`] — O(n) with a direct O(1) min update
//!   (never rescans).
//!
//! Rows whose minimum moved since the last drain are tracked in a
//! **dirty-source set** ([`KnowledgeMatrix::drain_dirty_into`]), letting
//! the engine's PACK/ACK sweep visit only sources whose `minAL`/`minPAL`
//! actually changed instead of all `n` on every event. A [`version`]
//! counter (bumped on every row-minimum change) gives callers an O(1)
//! "did any frontier move?" check.
//!
//! [`version`]: KnowledgeMatrix::version

use causal_order::{EntityId, Seq};

/// A dense `n × n` matrix of sequence-number knowledge with monotonic
/// updates, cached row minima and dirty-row change tracking.
#[derive(Debug, Clone)]
pub struct KnowledgeMatrix {
    n: usize,
    /// Row-major: `cells[source * n + observer]`.
    cells: Vec<Seq>,
    /// Cached row minima, index-aligned with rows.
    mins: Vec<Seq>,
    /// How many cells of each row currently equal its minimum (so a raise
    /// of a non-unique minimum cell needs no rescan).
    min_count: Vec<u32>,
    /// `true` for rows whose minimum changed since the last drain.
    dirty: Vec<bool>,
    /// Queue of dirty row indices (deduplicated through `dirty`).
    dirty_rows: Vec<u32>,
    /// Bumped every time any row minimum changes.
    version: u64,
}

impl KnowledgeMatrix {
    /// Creates an `n × n` matrix with every cell at [`Seq::FIRST`] (nothing
    /// accepted anywhere, matching Example 4.1's "initially `REQ_j = 1`").
    pub fn new(n: usize) -> Self {
        KnowledgeMatrix {
            n,
            cells: vec![Seq::FIRST; n * n],
            mins: vec![Seq::FIRST; n],
            min_count: vec![n as u32; n],
            dirty: vec![false; n],
            dirty_rows: Vec::with_capacity(n),
            version: 0,
        }
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cell for (`source`, `observer`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, source: EntityId, observer: EntityId) -> Seq {
        self.cells[source.index() * self.n + observer.index()]
    }

    /// Monotonically raises the cell for (`source`, `observer`) to `value`
    /// (no-op if the cell is already at least `value`). Returns `true` if
    /// the cell changed.
    ///
    /// O(1) unless the raised cell was the row's only remaining minimum, in
    /// which case the row is rescanned once (the minimum strictly grew).
    pub fn raise(&mut self, source: EntityId, observer: EntityId, value: Seq) -> bool {
        let k = source.index();
        let idx = k * self.n + observer.index();
        let old = self.cells[idx];
        if value <= old {
            return false;
        }
        self.cells[idx] = value;
        if old == self.mins[k] {
            self.min_count[k] -= 1;
            if self.min_count[k] == 0 {
                self.rescan_row(k);
            }
        }
        true
    }

    /// Folds a whole confirmation vector from `observer` in: for every
    /// source `k`, `cell[k][observer] = max(cell, vector[k])`. Returns
    /// `true` if anything changed.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != n`.
    pub fn fold_column(&mut self, observer: EntityId, vector: &[Seq]) -> bool {
        assert_eq!(vector.len(), self.n, "confirmation vector length mismatch");
        let mut changed = false;
        for (k, &value) in vector.iter().enumerate() {
            changed |= self.raise(EntityId::new(k as u32), observer, value);
        }
        changed
    }

    /// Monotonically raises **every** cell of `source`'s row to at least
    /// `value` (the AckOnly `acked`-adoption rule: the sender asserts all
    /// entities pre-acknowledged `source`'s PDUs below `value`). Returns
    /// `true` if anything changed. O(n), never rescans: the new row
    /// minimum is simply `max(old minimum, value)`.
    pub fn raise_row(&mut self, source: EntityId, value: Seq) -> bool {
        let k = source.index();
        if value <= self.mins[k] {
            // Every cell is already >= the row minimum >= value.
            return false;
        }
        let row = &mut self.cells[k * self.n..(k + 1) * self.n];
        let mut at_value = 0u32;
        for cell in row.iter_mut() {
            if *cell < value {
                *cell = value;
                at_value += 1;
            } else if *cell == value {
                at_value += 1;
            }
        }
        self.mins[k] = value;
        self.min_count[k] = at_value;
        self.note_dirty(k);
        true
    }

    /// The row minimum for `source` — the paper's `minAL_k` / `minPAL_k`.
    /// O(1): reads the cached minimum.
    pub fn row_min(&self, source: EntityId) -> Seq {
        self.mins[source.index()]
    }

    /// The full vector of row minima (`⟨minAL_1, …, minAL_n⟩`), used as the
    /// pre-ack frontier advertised in `AckOnly` PDUs. O(1),
    /// allocation-free: returns the cached slice.
    pub fn row_mins(&self) -> &[Seq] {
        &self.mins
    }

    /// A counter bumped every time any row minimum changes; two equal
    /// versions imply identical [`row_mins`] (minima are monotonic, so no
    /// ABA). Lets callers compare frontiers in O(1).
    ///
    /// [`row_mins`]: KnowledgeMatrix::row_mins
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether any row minimum changed since the last
    /// [`drain_dirty_into`](KnowledgeMatrix::drain_dirty_into).
    pub fn has_dirty(&self) -> bool {
        !self.dirty_rows.is_empty()
    }

    /// Moves the indices of rows whose minimum changed since the last drain
    /// into `out` (appended; `out` is *not* cleared) and resets the dirty
    /// set. Allocation-free when `out` has capacity for `n` entries.
    pub fn drain_dirty_into(&mut self, out: &mut Vec<u32>) {
        for &k in &self.dirty_rows {
            self.dirty[k as usize] = false;
        }
        out.append(&mut self.dirty_rows);
    }

    /// Recomputes one row's cached minimum after its last minimal cell was
    /// raised. The minimum strictly increases, so the row becomes dirty.
    fn rescan_row(&mut self, k: usize) {
        let row = &self.cells[k * self.n..(k + 1) * self.n];
        let mut min = row[0];
        let mut count = 1u32;
        for &cell in &row[1..] {
            if cell < min {
                min = cell;
                count = 1;
            } else if cell == min {
                count += 1;
            }
        }
        debug_assert!(min > self.mins[k], "rescan must raise the minimum");
        self.mins[k] = min;
        self.min_count[k] = count;
        self.note_dirty(k);
    }

    fn note_dirty(&mut self, k: usize) {
        self.version += 1;
        if !self.dirty[k] {
            self.dirty[k] = true;
            self.dirty_rows.push(k as u32);
        }
    }
}

/// Equality is *knowledge* equality: same cluster size and cells. The
/// change-tracking bookkeeping (version, dirty set) is history-dependent —
/// two matrices reached by reordered commutative folds must still compare
/// equal.
impl PartialEq for KnowledgeMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.cells == other.cells
    }
}

impl Eq for KnowledgeMatrix {}

impl std::fmt::Display for KnowledgeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for k in 0..self.n {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.cells[k * self.n + j].get())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn seqs(v: &[u64]) -> Vec<Seq> {
        v.iter().copied().map(Seq::new).collect()
    }

    /// Freshly recomputed row minimum, for cross-checking the cache.
    fn fresh_min(m: &KnowledgeMatrix, k: u32) -> Seq {
        (0..m.n())
            .map(|j| m.get(e(k), e(j as u32)))
            .min()
            .expect("n >= 1")
    }

    #[test]
    fn starts_at_first() {
        let m = KnowledgeMatrix::new(3);
        assert_eq!(m.get(e(0), e(2)), Seq::FIRST);
        assert_eq!(m.row_min(e(1)), Seq::FIRST);
        assert_eq!(m.n(), 3);
        assert_eq!(m.version(), 0);
        assert!(!m.has_dirty());
    }

    #[test]
    fn raise_is_monotonic() {
        let mut m = KnowledgeMatrix::new(2);
        assert!(m.raise(e(0), e(1), Seq::new(5)));
        assert!(!m.raise(e(0), e(1), Seq::new(3)), "must not regress");
        assert_eq!(m.get(e(0), e(1)), Seq::new(5));
        assert!(!m.raise(e(0), e(1), Seq::new(5)), "equal is a no-op");
    }

    #[test]
    fn fold_column_updates_one_observer() {
        let mut m = KnowledgeMatrix::new(3);
        assert!(m.fold_column(e(1), &seqs(&[3, 1, 2])));
        assert_eq!(m.get(e(0), e(1)), Seq::new(3));
        assert_eq!(m.get(e(1), e(1)), Seq::new(1));
        assert_eq!(m.get(e(2), e(1)), Seq::new(2));
        // Other observers untouched.
        assert_eq!(m.get(e(0), e(0)), Seq::FIRST);
        // Stale vector changes nothing.
        assert!(!m.fold_column(e(1), &seqs(&[2, 1, 1])));
    }

    #[test]
    fn row_min_is_pack_threshold() {
        // Example 4.1: after accepting a,b,c,d the AL row for E1 is
        // [3, 3, 2] (own REQ_1 = 3, d told us 3, b told us 2)... the row
        // minimum 2 makes exactly a (seq 1) pre-acknowledgeable.
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[3, 2, 2]));
        m.fold_column(e(1), &seqs(&[3, 1, 2]));
        m.fold_column(e(2), &seqs(&[2, 1, 1]));
        assert_eq!(m.row_min(e(0)), Seq::new(2));
        // a.SEQ = 1 < 2 → pre-acknowledged; c.SEQ = 2 not yet.
        assert!(Seq::new(1) < m.row_min(e(0)));
        assert!(Seq::new(2) >= m.row_min(e(0)));
    }

    #[test]
    fn row_mins_vector() {
        let mut m = KnowledgeMatrix::new(2);
        m.fold_column(e(0), &seqs(&[4, 7]));
        m.fold_column(e(1), &seqs(&[2, 9]));
        assert_eq!(m.row_mins(), &seqs(&[2, 7])[..]);
    }

    #[test]
    fn cached_minima_track_raises() {
        let mut m = KnowledgeMatrix::new(3);
        // Raise cells one by one; cached minimum must always match a fresh
        // recomputation, including when the last minimal cell moves.
        let updates = [
            (0, 0, 4),
            (0, 1, 2),
            (0, 2, 2), // min now 2 (count 2)
            (0, 1, 5), // min stays 2 (count 1)
            (0, 2, 3), // last minimal cell raised → rescan → min 3
            (1, 0, 9),
            (2, 2, 7),
        ];
        for (k, j, v) in updates {
            m.raise(e(k), e(j), Seq::new(v));
            for row in 0..3 {
                assert_eq!(m.row_min(e(row)), fresh_min(&m, row), "row {row}");
            }
        }
        assert_eq!(m.row_min(e(0)), Seq::new(3));
    }

    #[test]
    fn raise_row_lifts_whole_row() {
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(1), &seqs(&[5, 1, 1]));
        assert!(m.raise_row(e(0), Seq::new(3)));
        assert_eq!(m.get(e(0), e(0)), Seq::new(3));
        assert_eq!(m.get(e(0), e(1)), Seq::new(5), "higher cells keep value");
        assert_eq!(m.get(e(0), e(2)), Seq::new(3));
        assert_eq!(m.row_min(e(0)), Seq::new(3));
        assert_eq!(m.row_min(e(0)), fresh_min(&m, 0));
        // Raising below the current minimum is a no-op.
        assert!(!m.raise_row(e(0), Seq::new(2)));
    }

    #[test]
    fn dirty_rows_report_min_changes_once() {
        let mut m = KnowledgeMatrix::new(2);
        let mut dirty = Vec::new();
        // Raising one cell of a 2-cell row leaves the min unchanged.
        m.raise(e(0), e(0), Seq::new(3));
        m.drain_dirty_into(&mut dirty);
        assert!(dirty.is_empty(), "min did not move");
        // Raising the other cell moves the min → row 0 dirty, deduplicated.
        m.raise(e(0), e(1), Seq::new(2));
        m.raise(e(0), e(1), Seq::new(3));
        assert!(m.has_dirty());
        m.drain_dirty_into(&mut dirty);
        assert_eq!(dirty, vec![0]);
        assert!(!m.has_dirty());
        // Drained: no re-report without a new change.
        dirty.clear();
        m.drain_dirty_into(&mut dirty);
        assert!(dirty.is_empty());
    }

    #[test]
    fn version_tracks_frontier_changes_only() {
        let mut m = KnowledgeMatrix::new(2);
        let v0 = m.version();
        m.raise(e(0), e(0), Seq::new(5)); // min unchanged (other cell at 1)
        assert_eq!(m.version(), v0);
        m.raise(e(0), e(1), Seq::new(4)); // min 1 → 4
        assert!(m.version() > v0);
    }

    #[test]
    fn equality_ignores_change_tracking_history() {
        let mut a = KnowledgeMatrix::new(2);
        let mut b = KnowledgeMatrix::new(2);
        // Same knowledge, reached through different update orders.
        a.fold_column(e(0), &seqs(&[4, 2]));
        a.fold_column(e(1), &seqs(&[1, 5]));
        b.fold_column(e(1), &seqs(&[1, 5]));
        b.fold_column(e(0), &seqs(&[4, 2]));
        let mut sink = Vec::new();
        a.drain_dirty_into(&mut sink);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_wrong_length_panics() {
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[1, 1]));
    }

    #[test]
    fn display_renders_rows() {
        let mut m = KnowledgeMatrix::new(2);
        m.raise(e(0), e(1), Seq::new(4));
        assert_eq!(m.to_string(), "[1 4]\n[1 1]");
    }
}
