//! The `AL` and `PAL` knowledge matrices (§4.1, §4.4, §4.5).
//!
//! `AL[k][j]` is "the sequence number of a PDU which `E_i` knows that `E_j`
//! expects to receive next from `E_k`" — one row per *source* `k`, one
//! column per *observer* `j`. `minAL_k` (the row minimum) is the highest
//! sequence number below which **every** entity is known to have accepted
//! `E_k`'s PDUs; the PACK condition is `p.SEQ < minAL_k`.
//!
//! `PAL` has the same shape but tracks *pre-acknowledgment* knowledge, and
//! `minPAL_k` drives the ACK condition.
//!
//! All updates are **monotonic** (component-wise max): retransmitted PDUs
//! carry their original, older `ACK` vectors (Lemma 4.2 depends on
//! retransmissions being bit-identical), and folding an old vector in must
//! never move knowledge backwards.

use causal_order::{EntityId, Seq};

/// A dense `n × n` matrix of sequence-number knowledge with monotonic
/// updates and cached row minima.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeMatrix {
    n: usize,
    /// Row-major: `cells[source * n + observer]`.
    cells: Vec<Seq>,
}

impl KnowledgeMatrix {
    /// Creates an `n × n` matrix with every cell at [`Seq::FIRST`] (nothing
    /// accepted anywhere, matching Example 4.1's "initially `REQ_j = 1`").
    pub fn new(n: usize) -> Self {
        KnowledgeMatrix {
            n,
            cells: vec![Seq::FIRST; n * n],
        }
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cell for (`source`, `observer`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, source: EntityId, observer: EntityId) -> Seq {
        self.cells[source.index() * self.n + observer.index()]
    }

    /// Monotonically raises the cell for (`source`, `observer`) to `value`
    /// (no-op if the cell is already at least `value`). Returns `true` if
    /// the cell changed.
    pub fn raise(&mut self, source: EntityId, observer: EntityId, value: Seq) -> bool {
        let cell = &mut self.cells[source.index() * self.n + observer.index()];
        if value > *cell {
            *cell = value;
            true
        } else {
            false
        }
    }

    /// Folds a whole confirmation vector from `observer` in: for every
    /// source `k`, `cell[k][observer] = max(cell, vector[k])`. Returns
    /// `true` if anything changed.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != n`.
    pub fn fold_column(&mut self, observer: EntityId, vector: &[Seq]) -> bool {
        assert_eq!(vector.len(), self.n, "confirmation vector length mismatch");
        let mut changed = false;
        for (k, &value) in vector.iter().enumerate() {
            changed |= self.raise(EntityId::new(k as u32), observer, value);
        }
        changed
    }

    /// The row minimum for `source` — the paper's `minAL_k` / `minPAL_k`.
    pub fn row_min(&self, source: EntityId) -> Seq {
        let row = &self.cells[source.index() * self.n..(source.index() + 1) * self.n];
        row.iter().copied().min().expect("n >= 2")
    }

    /// The full vector of row minima (`⟨minAL_1, …, minAL_n⟩`), used as the
    /// pre-ack frontier advertised in `AckOnly` PDUs.
    pub fn row_mins(&self) -> Vec<Seq> {
        (0..self.n)
            .map(|k| self.row_min(EntityId::new(k as u32)))
            .collect()
    }
}

impl std::fmt::Display for KnowledgeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for k in 0..self.n {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.cells[k * self.n + j].get())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn seqs(v: &[u64]) -> Vec<Seq> {
        v.iter().copied().map(Seq::new).collect()
    }

    #[test]
    fn starts_at_first() {
        let m = KnowledgeMatrix::new(3);
        assert_eq!(m.get(e(0), e(2)), Seq::FIRST);
        assert_eq!(m.row_min(e(1)), Seq::FIRST);
        assert_eq!(m.n(), 3);
    }

    #[test]
    fn raise_is_monotonic() {
        let mut m = KnowledgeMatrix::new(2);
        assert!(m.raise(e(0), e(1), Seq::new(5)));
        assert!(!m.raise(e(0), e(1), Seq::new(3)), "must not regress");
        assert_eq!(m.get(e(0), e(1)), Seq::new(5));
        assert!(!m.raise(e(0), e(1), Seq::new(5)), "equal is a no-op");
    }

    #[test]
    fn fold_column_updates_one_observer() {
        let mut m = KnowledgeMatrix::new(3);
        assert!(m.fold_column(e(1), &seqs(&[3, 1, 2])));
        assert_eq!(m.get(e(0), e(1)), Seq::new(3));
        assert_eq!(m.get(e(1), e(1)), Seq::new(1));
        assert_eq!(m.get(e(2), e(1)), Seq::new(2));
        // Other observers untouched.
        assert_eq!(m.get(e(0), e(0)), Seq::FIRST);
        // Stale vector changes nothing.
        assert!(!m.fold_column(e(1), &seqs(&[2, 1, 1])));
    }

    #[test]
    fn row_min_is_pack_threshold() {
        // Example 4.1: after accepting a,b,c,d the AL row for E1 is
        // [3, 3, 2] (own REQ_1 = 3, d told us 3, b told us 2)... the row
        // minimum 2 makes exactly a (seq 1) pre-acknowledgeable.
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[3, 2, 2]));
        m.fold_column(e(1), &seqs(&[3, 1, 2]));
        m.fold_column(e(2), &seqs(&[2, 1, 1]));
        assert_eq!(m.row_min(e(0)), Seq::new(2));
        // a.SEQ = 1 < 2 → pre-acknowledged; c.SEQ = 2 not yet.
        assert!(Seq::new(1) < m.row_min(e(0)));
        assert!(Seq::new(2) >= m.row_min(e(0)));
    }

    #[test]
    fn row_mins_vector() {
        let mut m = KnowledgeMatrix::new(2);
        m.fold_column(e(0), &seqs(&[4, 7]));
        m.fold_column(e(1), &seqs(&[2, 9]));
        assert_eq!(m.row_mins(), seqs(&[2, 7]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_wrong_length_panics() {
        let mut m = KnowledgeMatrix::new(3);
        m.fold_column(e(0), &seqs(&[1, 1]));
    }

    #[test]
    fn display_renders_rows() {
        let mut m = KnowledgeMatrix::new(2);
        m.raise(e(0), e(1), Seq::new(4));
        assert_eq!(m.to_string(), "[1 4]\n[1 1]");
    }
}
