//! End-to-end observability over the threaded transport: a traced cluster
//! run must yield a JSONL trace that round-trips losslessly and
//! reproduces the host-measured Tco/Tap figures — the paper's Figure-8
//! quantities recovered *offline* from the event stream instead of from
//! the live `NodeReport` instrumentation.

use bytes::Bytes;
use co_observe::jsonl::{self, TraceLine};
use co_transport::{merged_trace, Cluster, ClusterOptions};

fn traced_run(n: usize, rounds: usize) -> Vec<co_transport::NodeReport> {
    let options = ClusterOptions {
        trace: true,
        ..ClusterOptions::default()
    };
    let cluster = Cluster::start(n, options).expect("cluster starts");
    for round in 0..rounds {
        for i in 0..n {
            cluster
                .submit(i, Bytes::from(format!("m-{round}-{i}").into_bytes()))
                .expect("submit");
        }
    }
    cluster.shutdown()
}

#[test]
fn trace_round_trips_through_jsonl() {
    let reports = traced_run(3, 4);
    let trace = merged_trace(&reports);
    assert!(!trace.is_empty(), "traced run must record events");
    let text: String = trace.iter().map(|l| jsonl::encode_line(l) + "\n").collect();
    let parsed = jsonl::parse_trace(&text);
    assert_eq!(parsed, trace, "JSONL encode/parse must be lossless");
}

#[test]
fn trace_reproduces_tap_sample_count() {
    let reports = traced_run(3, 4);
    let trace = merged_trace(&reports);
    let from_trace = jsonl::tap_samples_us(&trace);
    let from_reports: usize = reports.iter().map(|r| r.tap_samples.len()).sum();
    // Every remote delivery contributes exactly one Tap sample in both
    // views: the live report (submit timestamp framed in the payload) and
    // the offline join of DataSent → remote Delivered events.
    assert_eq!(from_trace.len(), from_reports);
    assert_eq!(
        from_trace.len(),
        4 * 3 * 2,
        "4 rounds × 3 senders × 2 remotes"
    );
}

#[test]
fn trace_reproduces_tco_samples() {
    let reports = traced_run(3, 2);
    let trace = merged_trace(&reports);
    let mut from_trace = jsonl::tco_samples_us(&trace);
    // The HostTco record stores whole microseconds; truncate the live
    // samples the same way before comparing the multisets.
    let mut from_reports: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.tco_samples.iter().map(|d| d.as_micros() as u64))
        .collect();
    from_trace.sort_unstable();
    from_reports.sort_unstable();
    assert_eq!(from_trace, from_reports);
}

#[test]
fn latency_histograms_populated_without_tracing() {
    // Histograms are always-on (bounded state); the trace stays empty
    // unless requested.
    let cluster = Cluster::start(3, ClusterOptions::default()).expect("cluster starts");
    cluster
        .submit(0, Bytes::from_static(b"hello"))
        .expect("submit");
    let reports = cluster.shutdown();
    for r in &reports {
        assert!(r.trace.is_empty(), "tracing is opt-in");
        assert!(
            r.latency.accept_to_deliver().count() >= 1,
            "at {}: every node delivers and must time the accept→deliver stage",
            r.id
        );
    }
    // The sender timed submit→accept; remotes did not submit.
    assert!(reports[0].latency.submit_to_accept().count() >= 1);
}

#[test]
fn span_report_matches_live_instrumentation() {
    let reports = traced_run(3, 4);
    let trace = merged_trace(&reports);

    // Every report carries the same cluster-wide analysis.
    let span_report = reports[0].span_report.as_ref().expect("traced run");
    for r in &reports {
        assert_eq!(r.span_report.as_ref(), Some(span_report), "shared view");
    }

    // Every broadcast quiesced, so every span is complete.
    assert_eq!(span_report.spans.spans.len(), 4 * 3);
    assert_eq!(span_report.complete_spans, 4 * 3);
    assert!(span_report.spans.duplicates.is_empty());
    assert!(
        span_report.findings.is_empty(),
        "{:?}",
        span_report.findings
    );

    // Offline send→deliver is the event-join Tap: identical, sample for
    // sample, to the jsonl helper folding the same events.
    let mut tap_hist = co_observe::Histogram::new();
    for v in jsonl::tap_samples_us(&trace) {
        tap_hist.record(v);
    }
    assert_eq!(span_report.breakdown.send_to_deliver, tap_hist);

    // And the offline Tco histogram folds exactly the HostTco records,
    // which mirror the live tco_samples (whole-µs truncation).
    let mut tco_hist = co_observe::Histogram::new();
    for v in jsonl::tco_samples_us(&trace) {
        tco_hist.record(v);
    }
    assert_eq!(span_report.tco, tco_hist);
    let live_tco: usize = reports.iter().map(|r| r.tco_samples.len()).sum();
    assert_eq!(span_report.tco.count() as usize, live_tco);

    // Live Tap embeds the submit timestamp, which precedes the DataSent
    // event by the submit-processing time — so live samples are a hair
    // larger than the offline join. Same count, and the medians agree
    // within the histogram's bucket resolution (a factor of two) plus
    // that sub-millisecond framing skew.
    let live_tap: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.tap_samples.iter().map(|d| d.as_micros() as u64))
        .collect();
    assert_eq!(
        span_report.breakdown.send_to_deliver.count() as usize,
        live_tap.len()
    );
    let mut live_hist = co_observe::Histogram::new();
    for v in &live_tap {
        live_hist.record(*v);
    }
    let (live_p50, off_p50) = (
        live_hist.quantile_us(0.5),
        span_report.breakdown.send_to_deliver.quantile_us(0.5),
    );
    assert!(
        off_p50 <= live_p50.saturating_mul(2) + 1_000
            && live_p50 <= off_p50.saturating_mul(2) + 1_000,
        "offline p50 {off_p50}us vs live p50 {live_p50}us"
    );

    // Per-destination views partition the aggregate.
    let merged: u64 = span_report
        .per_dest
        .iter()
        .map(|b| b.send_to_deliver.count())
        .sum();
    assert_eq!(merged, span_report.breakdown.send_to_deliver.count());
}

#[test]
fn span_report_absent_without_tracing() {
    let cluster = Cluster::start(2, ClusterOptions::default()).expect("cluster starts");
    cluster
        .submit(0, Bytes::from_static(b"hi"))
        .expect("submit");
    let reports = cluster.shutdown();
    assert!(reports.iter().all(|r| r.span_report.is_none()));
}

#[test]
fn merged_trace_is_time_sorted() {
    let reports = traced_run(3, 3);
    let trace = merged_trace(&reports);
    let times: Vec<u64> = trace
        .iter()
        .map(|l| match l {
            TraceLine::Event { event, .. } => event.now_us(),
            TraceLine::HostTco { at_us, .. } => *at_us,
        })
        .collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "trace must be time-sorted"
    );
}

#[test]
fn flight_recorder_dumps_ride_every_report() {
    // The black box is always on: even an untraced run surrenders each
    // node's most recent protocol events, labelled with the core and the
    // transport it ran on, and the dump lines are analyzable JSONL.
    let cluster = Cluster::start(3, ClusterOptions::default()).expect("cluster starts");
    for round in 0..4 {
        for i in 0..3 {
            cluster
                .submit(i, Bytes::from(format!("r-{round}-{i}").into_bytes()))
                .expect("submit");
        }
    }
    let reports = cluster.shutdown();
    for (i, r) in reports.iter().enumerate() {
        assert!(r.panicked.is_none());
        let dump = &r.flight_recorder;
        assert_eq!(dump.node, i as u32);
        assert_eq!(dump.core, "co");
        assert_eq!(dump.network, "threaded");
        assert!(!dump.events.is_empty(), "traffic flowed at node {i}");
        for line in dump.event_lines() {
            let parsed = jsonl::parse_line_strict(&line).expect("dump lines are valid JSONL");
            assert!(matches!(parsed, TraceLine::Event { .. }));
        }
    }
}

#[test]
fn recorder_depth_zero_disables_retention() {
    let options = ClusterOptions {
        recorder_depth: 0,
        ..ClusterOptions::default()
    };
    let cluster = Cluster::start(2, options).expect("cluster starts");
    cluster.submit(0, Bytes::from_static(b"x")).expect("submit");
    let reports = cluster.shutdown();
    for r in &reports {
        assert!(r.flight_recorder.events.is_empty());
        assert_eq!(r.flight_recorder.capacity, 0);
        assert!(
            r.flight_recorder.evicted > 0,
            "events still flowed past the zero-depth ring"
        );
    }
}

#[test]
fn live_findings_agree_with_per_node_streaming_pass() {
    // Each node's live detector saw exactly that node's event stream:
    // replaying the node's trace through a fresh StreamingDetectors must
    // reproduce the findings the report carries.
    let reports = traced_run(3, 4);
    for r in &reports {
        let mut replay = co_trace::StreamingDetectors::new(co_trace::AnomalyConfig::default());
        for line in &r.trace {
            if let TraceLine::Event { event, .. } = line {
                replay.observe(r.id.raw(), *event);
            }
        }
        assert_eq!(replay.findings(), r.live_findings, "node {}", r.id);
    }
}
