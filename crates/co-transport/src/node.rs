//! The per-entity worker thread.

use bytes::{BufMut, Bytes, BytesMut};
use causal_order::EntityId;
use co_observe::{EventLog, FlightRecorder, LatencyTracker, RecorderDump, Tee, TraceLine};
use co_protocol::{Action, DeliveryCore, Entity, Pdu};
use co_trace::LiveDetector;
use crossbeam::channel::{Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::report::{trace_time_us, NodeReport};

/// The observer every cluster entity runs with: latency histograms always
/// (cheap, bounded state), a flight-recorder ring of the most recent
/// events plus the live streaming anomaly detectors (both bounded), and a
/// full event log only when tracing is on.
pub(crate) type NodeObserver =
    Tee<LatencyTracker, Tee<Option<EventLog>, Tee<FlightRecorder, LiveDetector>>>;

/// The `network` label stamped on threaded-cluster recorder dumps: this
/// transport runs on real channels, not an `mc-net` preset.
pub(crate) const NETWORK_LABEL: &str = "threaded";

/// Control-plane commands to a node thread.
#[derive(Debug)]
pub(crate) enum Cmd {
    /// Broadcast this payload (already timestamp-framed by the cluster).
    Submit(Bytes),
    /// Finish outstanding work, then report and exit.
    Shutdown,
}

pub(crate) struct NodeRuntime<C: DeliveryCore> {
    pub entity: Entity<C, NodeObserver>,
    pub me: EntityId,
    /// Whether to record host-Tco trace lines and keep the event log.
    pub trace: bool,
    /// Encoded-PDU channels to every peer (index = entity index; own slot
    /// unused).
    pub peers: Vec<Option<Sender<Bytes>>>,
    /// Each peer's overrun counter, bumped when its channel is full.
    pub peer_overruns: Vec<Option<Arc<AtomicU64>>>,
    pub pdu_rx: Receiver<Bytes>,
    pub cmd_rx: Receiver<Cmd>,
    /// Incremented by *senders* when this node's inbound channel was full.
    pub overruns: Arc<AtomicU64>,
    pub epoch: Instant,
    pub tick_interval: Duration,
    /// Artificial extra per-PDU processing cost (to provoke overruns).
    pub proc_delay: Duration,
    /// Artificial per-copy egress serialization cost (zero = none); the
    /// real-time analogue of `mc-net`'s shared-bandwidth model.
    pub egress_pace: Duration,
    /// How long the node keeps draining after a shutdown request.
    pub drain_idle: Duration,
    /// Maximum PDUs accepted per inbox drain (≥ 1). Everything already
    /// queued when the thread wakes is decoded with one warm pool and fed
    /// to the engine as one batch, so PACK/ACK bookkeeping and the
    /// confirmation `AckOnly` are paid once per drain instead of once per
    /// PDU.
    pub drain_batch: usize,
    /// Warm ack-vector pool for batched decode.
    pub ack_pool: co_wire::AckBufPool,
    /// Reused frame buffer for the inbox drain.
    pub frame_scratch: Vec<Bytes>,
    /// Reused decoded-PDU buffer for the inbox drain.
    pub pdu_scratch: Vec<Pdu>,
}

/// Frames `payload` with the submit timestamp (µs since epoch) so the
/// delivering node can compute Tap.
pub(crate) fn frame_payload(epoch: Instant, payload: &[u8]) -> Bytes {
    let mut framed = BytesMut::with_capacity(8 + payload.len());
    framed.put_u64(epoch.elapsed().as_micros() as u64);
    framed.put_slice(payload);
    framed.freeze()
}

/// Splits a framed payload back into (submit-µs, payload).
pub(crate) fn unframe_payload(data: &Bytes) -> Option<(u64, Bytes)> {
    if data.len() < 8 {
        return None;
    }
    let mut ts = [0u8; 8];
    ts.copy_from_slice(&data[..8]);
    Some((u64::from_be_bytes(ts), data.slice(8..)))
}

impl<C: DeliveryCore> NodeRuntime<C> {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn dispatch(&mut self, actions: Vec<Action>, report: &mut NodeReport) {
        for action in actions {
            match action {
                Action::Broadcast(pdu) => {
                    let encoded = pdu.encode();
                    let mut copies = 0u32;
                    for (i, peer) in self.peers.iter().enumerate() {
                        let Some(tx) = peer else { continue };
                        debug_assert_ne!(i, self.me.index());
                        copies += 1;
                        match tx.try_send(encoded.clone()) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                // Receiver's NIC buffer overran: the PDU is
                                // lost, exactly like the paper's MC
                                // service. The protocol will recover it.
                                if let Some(counter) = &self.peer_overruns[i] {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                    if !self.egress_pace.is_zero() && copies > 0 {
                        // Busy-wait out the NIC serialization time of every
                        // copy just sent — the shared-egress-link model
                        // (`mc-net`'s `BandwidthModel::Shared`) in real
                        // time: a broadcast burst drains at link rate, not
                        // instantaneously.
                        let budget = self.egress_pace * copies;
                        let started = Instant::now();
                        while started.elapsed() < budget {
                            std::hint::spin_loop();
                        }
                    }
                }
                Action::Deliver(d) => {
                    let now = self.now_us();
                    if let Some((sent_us, payload)) = unframe_payload(&d.data) {
                        if d.src != self.me {
                            report
                                .tap_samples
                                .push(Duration::from_micros(now.saturating_sub(sent_us)));
                        }
                        report.delivered.push((d.src, d.seq.get(), payload));
                    } else {
                        report.delivered.push((d.src, d.seq.get(), d.data));
                    }
                }
                // `Action` is #[non_exhaustive].
                _ => {}
            }
        }
    }

    /// Processes one inbox drain: `first` plus everything already queued
    /// on the channel, up to the configured batch cap, through the
    /// engine's batched acceptance. One warm decode pool and one
    /// confirmation epilogue cover the whole batch.
    fn handle_batch(&mut self, first: Bytes, report: &mut NodeReport) {
        let started = Instant::now();
        let mut frames = std::mem::take(&mut self.frame_scratch);
        frames.clear();
        frames.push(first);
        while frames.len() < self.drain_batch.max(1) {
            match self.pdu_rx.try_recv() {
                Ok(raw) => frames.push(raw),
                Err(_) => break,
            }
        }
        if !self.proc_delay.is_zero() {
            // Busy-wait to emulate a host slower than the network (§2.1):
            // the emulated cost is per PDU, so a batch spins once per
            // frame drained.
            let budget = self.proc_delay * frames.len() as u32;
            while started.elapsed() < budget {
                std::hint::spin_loop();
            }
        }
        let mut pdus = std::mem::take(&mut self.pdu_scratch);
        pdus.clear();
        // Corrupt frames drop, like a bad checksum.
        Pdu::decode_batch_into(frames.iter().map(|b| &b[..]), &mut self.ack_pool, &mut pdus);
        let drained = frames.len();
        frames.clear();
        self.frame_scratch = frames;
        let now = self.now_us();
        let mut actions = Vec::new();
        // Mis-addressed PDUs drop inside the batch without poisoning it.
        self.entity.on_pdus_into(pdus.drain(..), now, &mut actions);
        self.pdu_scratch = pdus;
        self.dispatch(actions, report);
        let dur = started.elapsed();
        // Tco stays a *per-PDU* cost distribution (the paper's per-PDU
        // host cost, and what the offline trace analysis reconstructs):
        // attribute the batch duration evenly across the frames it
        // covered, one sample — and, when tracing, one HostTco record —
        // per frame.
        let per_frame = dur / drained as u32;
        for _ in 0..drained {
            report.tco_samples.push(per_frame);
            if self.trace {
                // Tco is a host measurement (CPU time inside the engine);
                // it cannot be reconstructed from event timestamps, so it
                // gets its own trace record.
                report.trace.push(TraceLine::HostTco {
                    node: self.me.raw(),
                    at_us: now,
                    dur_us: per_frame.as_micros() as u64,
                });
            }
        }
    }

    pub(crate) fn run(mut self) -> NodeReport {
        let mut report = NodeReport {
            id: self.me,
            delivered: Vec::new(),
            tco_samples: Vec::new(),
            tap_samples: Vec::new(),
            overrun_drops: 0,
            metrics: co_protocol::Metrics::default(),
            latency: LatencyTracker::default(),
            trace: Vec::new(),
            span_report: None,
            flight_recorder: RecorderDump::capture(
                &FlightRecorder::default(),
                self.me.raw(),
                C::NAME,
                NETWORK_LABEL,
            ),
            live_findings: Vec::new(),
            panicked: None,
        };
        // The event loop runs under a panic guard so the finalizer below
        // always executes: a crashed node still surrenders its black box
        // (flight recorder, live findings, partial measurements) instead
        // of taking them down with the thread.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.drive(&mut report)));
        report.overrun_drops = self.overruns.load(Ordering::Relaxed);
        report.metrics = *self.entity.metrics();
        let node = self.me.raw();
        let Tee(latency, Tee(log, Tee(recorder, live))) = self.entity.into_observer();
        report.latency = latency;
        report.flight_recorder = RecorderDump::capture(&recorder, node, C::NAME, NETWORK_LABEL);
        report.live_findings = live.findings();
        if let Some(log) = log {
            report.trace.extend(
                log.into_events()
                    .into_iter()
                    .map(|event| TraceLine::Event { node, event }),
            );
            // Events were appended after the HostTco lines; restore time
            // order (stable within equal timestamps).
            report.trace.sort_by_key(trace_time_us);
        }
        if let Err(payload) = outcome {
            report.panicked = Some(panic_message(payload.as_ref()));
        }
        report
    }

    fn drive(&mut self, report: &mut NodeReport) {
        let mut shutting_down = false;
        let mut last_activity = Instant::now();
        loop {
            // Ticks keep deferred confirmations and RET retries moving.
            crossbeam::channel::select! {
                recv(self.pdu_rx) -> raw => {
                    if let Ok(raw) = raw {
                        self.handle_batch(raw, report);
                        last_activity = Instant::now();
                    }
                }
                recv(self.cmd_rx) -> cmd => {
                    match cmd {
                        Ok(Cmd::Submit(framed)) => {
                            let now = self.now_us();
                            match self.entity.submit(framed, now) {
                                Ok((_outcome, actions)) => self.dispatch(actions, report),
                                Err(_) => { /* oversized: reported via metrics */ }
                            }
                            last_activity = Instant::now();
                        }
                        Ok(Cmd::Shutdown) | Err(_) => {
                            shutting_down = true;
                        }
                    }
                }
                default(self.tick_interval) => {
                    let now = self.now_us();
                    let actions = self.entity.on_tick(now);
                    if !actions.is_empty() {
                        last_activity = Instant::now();
                    }
                    self.dispatch(actions, report);
                }
            }
            if shutting_down
                && self.entity.is_quiescent()
                && last_activity.elapsed() >= self.drain_idle
            {
                break;
            }
            if shutting_down && last_activity.elapsed() >= self.drain_idle.mul_add_guard() {
                // Hard exit: something (e.g. a partitioned peer) prevents
                // quiescence; report what we have.
                break;
            }
        }
    }
}

/// Best-effort rendering of a panic payload (the common `&str` / `String`
/// shapes; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

trait DrainGuard {
    fn mul_add_guard(&self) -> Duration;
}

impl DrainGuard for Duration {
    /// Hard-exit bound: 20× the idle window.
    fn mul_add_guard(&self) -> Duration {
        *self * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let epoch = Instant::now();
        let framed = frame_payload(epoch, b"payload");
        let (ts, payload) = unframe_payload(&framed).unwrap();
        assert_eq!(&payload[..], b"payload");
        assert!(ts < 1_000_000, "timestamp is fresh");
    }

    #[test]
    fn unframe_rejects_short_buffers() {
        assert!(unframe_payload(&Bytes::from_static(b"short")).is_none());
    }

    #[test]
    fn frame_empty_payload() {
        let framed = frame_payload(Instant::now(), b"");
        let (_, payload) = unframe_payload(&framed).unwrap();
        assert!(payload.is_empty());
    }
}
