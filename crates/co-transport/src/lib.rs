//! Real-time threaded transport for the CO protocol — the reproduction of
//! the paper's §5 testbed ("The CO protocol is implemented in a user
//! process of the Sun SPARC2 workstation", one entity per workstation on an
//! Ethernet).
//!
//! Each entity runs on its own OS thread. Peers exchange **encoded** PDUs
//! (through `co-wire`, so the measured processing cost includes codec work,
//! as the paper's did) over bounded crossbeam channels: the channel plays
//! the NIC receive buffer, and a full channel drops the PDU — the MC
//! service's buffer-overrun loss, on real threads.
//!
//! Instrumentation matches Figure 8:
//!
//! * **Tco** — per-PDU protocol processing time (decode → engine → encode),
//!   measured with a monotonic clock around each receive;
//! * **Tap** — application-to-application delay, measured by embedding the
//!   submit timestamp in each payload and reading it back at delivery.
//!
//! # Example
//!
//! ```
//! use co_transport::{Cluster, ClusterOptions};
//! use bytes::Bytes;
//!
//! let cluster = Cluster::start(3, ClusterOptions::default())?;
//! cluster.submit(0, Bytes::from_static(b"hello"))?;
//! let reports = cluster.shutdown();
//! assert!(reports.iter().all(|r| r.delivered.len() == 1));
//! # Ok::<(), co_transport::TransportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod node;
mod report;
mod udp;

pub use cluster::{Cluster, ClusterOptions, TransportError};
pub use report::{merged_trace, NodeReport, TimingSummary};
pub use udp::{UdpCluster, UdpOptions};
