//! Per-node measurement reports.
//!
//! The simulated counterparts mirror this shape: `co-experiments`'
//! `NodeOutcome` for the §5 experiments and `co-check`'s `RunReport` for
//! the adversarial checker, so a run is summarized the same way whether
//! it executed on threads or inside `mc-net`.

use bytes::Bytes;
use causal_order::EntityId;
use co_observe::{LatencyTracker, RecorderDump, TraceLine};
use co_protocol::Metrics;
use std::time::Duration;

/// Everything one node measured during a run.
#[derive(Debug)]
pub struct NodeReport {
    /// The reporting entity.
    pub id: EntityId,
    /// Messages delivered to the application, in delivery order:
    /// `(origin, origin_seq, payload)`.
    pub delivered: Vec<(EntityId, u64, Bytes)>,
    /// Per-PDU protocol processing times (the paper's **Tco**), one sample
    /// per received PDU.
    pub tco_samples: Vec<Duration>,
    /// Application-to-application delays (the paper's **Tap**), one sample
    /// per delivered *remote* message.
    pub tap_samples: Vec<Duration>,
    /// PDUs dropped at this node's inbound channel (buffer overrun).
    pub overrun_drops: u64,
    /// The protocol engine's own counters.
    pub metrics: Metrics,
    /// Per-stage latency histograms folded live from the entity's event
    /// stream (submit→accept, accept→pre-ack, accept→deliver, RET
    /// round-trip).
    pub latency: LatencyTracker,
    /// The structured event trace, time-sorted, including host-measured
    /// Tco records. Empty unless tracing was enabled in the options.
    pub trace: Vec<TraceLine>,
    /// Cross-node span analysis of the whole run, computed once from the
    /// merged trace at shutdown and shared by every node's report (the
    /// spans are cluster-wide objects, so each node carries the same
    /// view). `None` unless tracing was enabled.
    pub span_report: Option<co_trace::SpanReport>,
    /// The node's always-on black box: the last `recorder_depth` protocol
    /// events, captured at shutdown — or at panic, so a crashed node's
    /// final transitions survive even when no trace was recorded.
    pub flight_recorder: RecorderDump,
    /// Findings from the node's live streaming detectors over its *own*
    /// event stream (the node-local rules: RET storms, loss bursts, flow
    /// saturation). Cross-node span findings need the merged trace and
    /// live in [`NodeReport::span_report`].
    pub live_findings: Vec<co_trace::Finding>,
    /// Set when the node thread panicked mid-run: the payload message.
    /// The report then carries everything measured up to the panic,
    /// including the flight recorder — partial data, flagged as such.
    pub panicked: Option<String>,
}

impl NodeReport {
    /// Summary statistics over the Tco samples.
    pub fn tco(&self) -> TimingSummary {
        TimingSummary::of(&self.tco_samples)
    }

    /// Summary statistics over the Tap samples.
    pub fn tap(&self) -> TimingSummary {
        TimingSummary::of(&self.tap_samples)
    }
}

/// Sort key shared by traces: the shared-epoch timestamp of a line.
pub(crate) fn trace_time_us(line: &TraceLine) -> u64 {
    match line {
        TraceLine::Event { event, .. } => event.now_us(),
        TraceLine::HostTco { at_us, .. } => *at_us,
    }
}

/// Merges the per-node traces of a run into one time-sorted stream — the
/// cluster-wide trace the JSONL exporter writes and the offline Tco/Tap
/// analysis (`co_observe::jsonl`) consumes. Nodes share the cluster
/// epoch, so timestamps are directly comparable.
pub fn merged_trace(reports: &[NodeReport]) -> Vec<TraceLine> {
    let mut lines: Vec<TraceLine> = reports
        .iter()
        .flat_map(|r| r.trace.iter().copied())
        .collect();
    lines.sort_by_key(trace_time_us);
    lines
}

/// Mean / median / p95 / max over a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// 50th percentile.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Maximum.
    pub max: Duration,
}

impl TimingSummary {
    /// Computes the summary; all-zero for an empty sample set.
    pub fn of(samples: &[Duration]) -> TimingSummary {
        if samples.is_empty() {
            return TimingSummary {
                count: 0,
                mean: Duration::ZERO,
                p50: Duration::ZERO,
                p95: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        // Nearest-rank percentile: the smallest sample with at least p of
        // the distribution at or below it.
        let pct = |p: f64| {
            let rank = (sorted.len() as f64 * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        TimingSummary {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for TimingSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:?} p50={:?} p95={:?} max={:?}",
            self.count, self.mean, self.p50, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = TimingSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = TimingSummary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.p50, Duration::from_micros(50));
        assert_eq!(s.p95, Duration::from_micros(95));
        assert_eq!(s.mean, Duration::from_nanos(50_500));
    }

    #[test]
    fn display_contains_fields() {
        let s = TimingSummary::of(&[Duration::from_micros(5)]);
        let text = s.to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("mean"));
    }
}
