//! UDP transport: the closest runnable analogue of the paper's testbed —
//! one protocol entity per thread, PDUs as real datagrams over UDP
//! sockets. UDP gives exactly the MC service's semantics on a LAN:
//! per-path FIFO is *not* guaranteed in general but holds on loopback,
//! datagrams are dropped when socket buffers overrun, and there is no
//! delivery guarantee — all recovered by the protocol itself.

use bytes::Bytes;
use causal_order::EntityId;
use co_protocol::{Action, Config, DeferralPolicy, Entity, Pdu};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cluster::TransportError;
use crate::node::{frame_payload, unframe_payload};
use crate::report::NodeReport;

/// Options for a UDP cluster run.
#[derive(Debug, Clone)]
pub struct UdpOptions {
    /// Confirmation policy for all entities.
    pub deferral: DeferralPolicy,
    /// Flow-condition window `W`.
    pub window: u64,
    /// Socket read timeout, doubling as the engine tick interval.
    pub tick_interval: Duration,
    /// How long nodes keep draining after shutdown before reporting.
    pub drain_idle: Duration,
    /// Cluster id stamped on PDUs.
    pub cid: u32,
}

impl Default for UdpOptions {
    fn default() -> Self {
        UdpOptions {
            deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
            window: 64,
            tick_interval: Duration::from_micros(500),
            drain_idle: Duration::from_millis(40),
            cid: 1,
        }
    }
}

enum UdpCmd {
    Submit(Bytes),
    Shutdown,
}

/// A running cluster of entities communicating over UDP loopback sockets.
#[derive(Debug)]
pub struct UdpCluster {
    cmd_txs: Vec<crossbeam::channel::Sender<UdpCmd>>,
    threads: Vec<std::thread::JoinHandle<NodeReport>>,
    n: usize,
    epoch: Instant,
}

impl std::fmt::Debug for UdpCmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpCmd::Submit(b) => write!(f, "Submit({}B)", b.len()),
            UdpCmd::Shutdown => write!(f, "Shutdown"),
        }
    }
}

impl UdpCluster {
    /// Binds `n` UDP sockets on 127.0.0.1 (OS-assigned ports) and spawns
    /// one entity thread per socket.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadConfig`] for invalid engine configurations;
    /// panics on socket errors (environmental, not recoverable in-process).
    pub fn start(n: usize, options: UdpOptions) -> Result<UdpCluster, TransportError> {
        let epoch = Instant::now();
        let sockets: Vec<UdpSocket> = (0..n)
            .map(|_| UdpSocket::bind(("127.0.0.1", 0)).expect("bind udp socket"))
            .collect();
        let addrs: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr().expect("local addr"))
            .collect();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        for (i, socket) in sockets.into_iter().enumerate() {
            let me = EntityId::new(i as u32);
            let config = Config::builder(options.cid, n, me)
                .deferral(options.deferral)
                .window(options.window)
                .build()
                .map_err(TransportError::BadConfig)?;
            let entity = Entity::new(config).map_err(TransportError::BadConfig)?;
            let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<UdpCmd>();
            cmd_txs.push(cmd_tx);
            let peers: Vec<Option<SocketAddr>> = addrs
                .iter()
                .enumerate()
                .map(|(j, &a)| if j == i { None } else { Some(a) })
                .collect();
            socket
                .set_read_timeout(Some(options.tick_interval))
                .expect("set read timeout");
            let opts = options.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("co-udp-{i}"))
                    .spawn(move || run_node(entity, me, socket, peers, cmd_rx, epoch, opts))
                    .expect("spawn udp entity thread"),
            );
        }
        Ok(UdpCluster {
            cmd_txs,
            threads,
            n,
            epoch,
        })
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Submits a payload for broadcast at entity `index`.
    ///
    /// # Errors
    ///
    /// [`TransportError::NoSuchEntity`] / [`TransportError::NodeGone`].
    pub fn submit(&self, index: usize, payload: Bytes) -> Result<(), TransportError> {
        let tx = self
            .cmd_txs
            .get(index)
            .ok_or(TransportError::NoSuchEntity { index, n: self.n })?;
        let framed = frame_payload(self.epoch, &payload);
        tx.send(UdpCmd::Submit(framed))
            .map_err(|_| TransportError::NodeGone { index })
    }

    /// Shuts down and collects per-node reports.
    pub fn shutdown(self) -> Vec<NodeReport> {
        for tx in &self.cmd_txs {
            let _ = tx.send(UdpCmd::Shutdown);
        }
        self.threads
            .into_iter()
            .map(|t| t.join().expect("udp entity thread panicked"))
            .collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    mut entity: Entity,
    me: EntityId,
    socket: UdpSocket,
    peers: Vec<Option<SocketAddr>>,
    cmd_rx: crossbeam::channel::Receiver<UdpCmd>,
    epoch: Instant,
    options: UdpOptions,
) -> NodeReport {
    let mut report = NodeReport {
        id: me,
        delivered: Vec::new(),
        tco_samples: Vec::new(),
        tap_samples: Vec::new(),
        overrun_drops: 0,
        metrics: co_protocol::Metrics::default(),
        latency: co_observe::LatencyTracker::default(),
        trace: Vec::new(),
        span_report: None,
        // The UDP transport runs a bare entity (no observer stack): its
        // reports carry an empty black box, not a missing one.
        flight_recorder: co_observe::RecorderDump::capture(
            &co_observe::FlightRecorder::default(),
            me.raw(),
            "co",
            "udp",
        ),
        live_findings: Vec::new(),
        panicked: None,
    };
    let shutting_down = Arc::new(AtomicBool::new(false));
    let mut last_activity = Instant::now();
    let mut buf = vec![0u8; 64 * 1024];

    let now_us = |epoch: Instant| epoch.elapsed().as_micros() as u64;

    let dispatch = |actions: Vec<Action>,
                    report: &mut NodeReport,
                    socket: &UdpSocket,
                    peers: &[Option<SocketAddr>]| {
        for action in actions {
            match action {
                Action::Broadcast(pdu) => {
                    let encoded = pdu.encode();
                    for addr in peers.iter().flatten() {
                        // A full receive buffer at the peer silently drops
                        // the datagram — UDP gives us MC-service loss for
                        // free. Send errors are treated the same way.
                        let _ = socket.send_to(&encoded, addr);
                    }
                }
                Action::Deliver(d) => {
                    let now = epoch.elapsed().as_micros() as u64;
                    if let Some((sent_us, payload)) = unframe_payload(&d.data) {
                        if d.src != me {
                            report
                                .tap_samples
                                .push(Duration::from_micros(now.saturating_sub(sent_us)));
                        }
                        report.delivered.push((d.src, d.seq.get(), payload));
                    } else {
                        report.delivered.push((d.src, d.seq.get(), d.data));
                    }
                }
                // `Action` is #[non_exhaustive].
                _ => {}
            }
        }
    };

    loop {
        // Network first (bounded by the read timeout = tick interval).
        match socket.recv_from(&mut buf) {
            Ok((len, _addr)) => {
                let started = Instant::now();
                if let Ok(pdu) = Pdu::decode(&buf[..len]) {
                    let mut actions = Vec::new();
                    if entity.on_pdu(pdu, now_us(epoch), &mut actions).is_ok() {
                        dispatch(actions, &mut report, &socket, &peers);
                    }
                }
                report.tco_samples.push(started.elapsed());
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Tick on idle.
                let actions = entity.on_tick(now_us(epoch));
                if !actions.is_empty() {
                    last_activity = Instant::now();
                }
                dispatch(actions, &mut report, &socket, &peers);
            }
            Err(_) => {}
        }
        // Commands.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                UdpCmd::Submit(framed) => {
                    if let Ok((_, actions)) = entity.submit(framed, now_us(epoch)) {
                        dispatch(actions, &mut report, &socket, &peers);
                    }
                    last_activity = Instant::now();
                }
                UdpCmd::Shutdown => shutting_down.store(true, Ordering::Relaxed),
            }
        }
        if shutting_down.load(Ordering::Relaxed) {
            let idle = last_activity.elapsed();
            if (entity.is_quiescent() && idle >= options.drain_idle)
                || idle >= options.drain_idle * 20
            {
                break;
            }
        }
    }
    report.metrics = *entity.metrics();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_cluster_delivers_broadcasts() {
        let cluster = UdpCluster::start(3, UdpOptions::default()).expect("start");
        for k in 0..5 {
            for i in 0..3 {
                cluster
                    .submit(i, Bytes::from(format!("u{i}-{k}")))
                    .expect("submit");
            }
        }
        let reports = cluster.shutdown();
        for r in &reports {
            assert_eq!(r.delivered.len(), 15, "at {}", r.id);
        }
        // Remote deliveries have Tap samples.
        assert!(!reports[0].tap_samples.is_empty());
    }

    #[test]
    fn udp_cluster_fifo_per_sender() {
        let cluster = UdpCluster::start(2, UdpOptions::default()).expect("start");
        for k in 0..20 {
            cluster
                .submit(0, Bytes::from(format!("{k}")))
                .expect("submit");
        }
        let reports = cluster.shutdown();
        let seqs: Vec<u64> = reports[1]
            .delivered
            .iter()
            .filter(|(s, _, _)| *s == EntityId::new(0))
            .map(|&(_, seq, _)| seq)
            .collect();
        let expected: Vec<u64> = (1..=20).collect();
        assert_eq!(seqs, expected);
    }

    #[test]
    fn udp_out_of_range_submit_rejected() {
        let cluster = UdpCluster::start(2, UdpOptions::default()).expect("start");
        assert!(cluster.submit(9, Bytes::new()).is_err());
        cluster.shutdown();
    }
}
