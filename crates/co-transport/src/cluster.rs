//! Cluster lifecycle: spawn threads, submit payloads, collect reports.

use bytes::Bytes;
use causal_order::EntityId;
use co_observe::{EventLog, FlightRecorder, LatencyTracker, Tee, DEFAULT_RECORDER_DEPTH};
use co_protocol::{CoCore, Config, DeferralPolicy, DeliveryCore, Entity};
use co_trace::LiveDetector;
use crossbeam::channel::{bounded, unbounded, Sender};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::node::{frame_payload, Cmd, NodeRuntime};
use crate::report::NodeReport;

/// Options for a real-time cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Bounded inbound-channel capacity per node (the NIC buffer, in PDUs).
    pub inbox_capacity: usize,
    /// Deferred-confirmation policy for all entities.
    pub deferral: DeferralPolicy,
    /// Flow-condition window `W`.
    pub window: u64,
    /// Interval between engine ticks on each node thread.
    pub tick_interval: Duration,
    /// Artificial extra per-PDU processing cost (zero = none).
    pub proc_delay: Duration,
    /// Artificial per-copy egress serialization cost (zero = none). The
    /// real-time parity knob for `mc-net`'s `BandwidthModel::Shared`: a
    /// broadcast of `k` copies holds the sender's thread for `k × pace`,
    /// so checker findings under the `contended` preset can be reproduced
    /// on the threaded transport. E.g. a 64-byte PDU on a 2 MB/s NIC is
    /// ~32µs of pace.
    pub egress_pace: Duration,
    /// How long nodes keep draining after shutdown before reporting.
    pub drain_idle: Duration,
    /// Cluster id stamped on PDUs.
    pub cid: u32,
    /// Record the full structured event trace (plus host-Tco lines) in
    /// each [`NodeReport`]. Latency histograms are always collected; the
    /// trace is opt-in because it grows with the run.
    pub trace: bool,
    /// Maximum PDUs a node accepts per inbox drain (clamped to ≥ 1).
    /// When a node thread wakes with several PDUs queued, they are
    /// decoded through one warm pool and fed to the engine as a single
    /// batch ([`co_protocol::Entity::on_pdus_into`]), amortizing the
    /// confirmation traffic; `1` reproduces strict per-PDU processing.
    pub drain_batch: usize,
    /// Flight-recorder depth per node: each entity keeps a ring of this
    /// many most-recent protocol events (allocation-free after startup),
    /// dumped into its [`NodeReport`] at shutdown — and to stderr when a
    /// node panics. `0` disables retention.
    pub recorder_depth: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            inbox_capacity: 4096,
            deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
            window: 64,
            tick_interval: Duration::from_micros(500),
            proc_delay: Duration::ZERO,
            egress_pace: Duration::ZERO,
            drain_idle: Duration::from_millis(30),
            cid: 1,
            trace: false,
            drain_batch: 32,
            recorder_depth: DEFAULT_RECORDER_DEPTH,
        }
    }
}

/// Errors from driving a [`Cluster`].
#[derive(Debug)]
pub enum TransportError {
    /// The target entity index is out of range.
    NoSuchEntity {
        /// The rejected index.
        index: usize,
        /// Cluster size.
        n: usize,
    },
    /// A node thread disconnected (panicked) before the command was sent.
    NodeGone {
        /// The unreachable entity index.
        index: usize,
    },
    /// Configuration was rejected by the protocol engine.
    BadConfig(co_protocol::ConfigError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::NoSuchEntity { index, n } => {
                write!(f, "entity index {index} out of range for cluster of {n}")
            }
            TransportError::NodeGone { index } => {
                write!(f, "node thread {index} is no longer running")
            }
            TransportError::BadConfig(e) => write!(f, "bad configuration: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::BadConfig(e) => Some(e),
            _ => None,
        }
    }
}

/// A running cluster of entity threads.
#[derive(Debug)]
pub struct Cluster {
    cmd_txs: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<NodeReport>>,
    epoch: Instant,
    n: usize,
    trace: bool,
}

impl Cluster {
    /// Spawns `n` entity threads fully meshed with bounded channels, all
    /// running the reference [`CoCore`] delivery engine.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadConfig`] if the derived engine configuration is
    /// invalid (e.g. `n < 2`).
    pub fn start(n: usize, options: ClusterOptions) -> Result<Cluster, TransportError> {
        Cluster::start_with_core::<CoCore>(n, options)
    }

    /// Spawns a cluster whose entities run the delivery core `C` —
    /// [`CoCore`], [`co_protocol::HybridCore`], [`co_protocol::SenderCore`]
    /// or any other [`DeliveryCore`]. All nodes share the core type; the
    /// returned handle is core-erased (reports carry the core's name via
    /// its metrics, not its type).
    pub fn start_with_core<C: DeliveryCore>(
        n: usize,
        options: ClusterOptions,
    ) -> Result<Cluster, TransportError> {
        let epoch = Instant::now();
        // Wire the full mesh.
        let mut pdu_txs = Vec::with_capacity(n);
        let mut pdu_rxs = Vec::with_capacity(n);
        let mut overruns = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Bytes>(options.inbox_capacity);
            pdu_txs.push(tx);
            pdu_rxs.push(rx);
            overruns.push(Arc::new(AtomicU64::new(0)));
        }
        let mut cmd_txs = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        for (i, pdu_rx) in pdu_rxs.into_iter().enumerate() {
            let me = EntityId::new(i as u32);
            let config = Config::builder(options.cid, n, me)
                .deferral(options.deferral)
                .window(options.window)
                .build()
                .map_err(TransportError::BadConfig)?;
            let observer = Tee(
                LatencyTracker::default(),
                Tee(
                    options.trace.then(EventLog::default),
                    Tee(
                        FlightRecorder::new(options.recorder_depth),
                        LiveDetector::new(me.raw(), co_trace::AnomalyConfig::default()),
                    ),
                ),
            );
            let entity = Entity::<C, _>::with_observer(config, observer)
                .map_err(TransportError::BadConfig)?;
            let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
            cmd_txs.push(cmd_tx);
            let peers: Vec<Option<Sender<Bytes>>> = pdu_txs
                .iter()
                .enumerate()
                .map(|(j, tx)| if j == i { None } else { Some(tx.clone()) })
                .collect();
            let peer_overruns: Vec<Option<Arc<AtomicU64>>> = overruns
                .iter()
                .enumerate()
                .map(|(j, c)| if j == i { None } else { Some(Arc::clone(c)) })
                .collect();
            let runtime = NodeRuntime {
                entity,
                me,
                trace: options.trace,
                peers,
                peer_overruns,
                pdu_rx,
                cmd_rx,
                overruns: Arc::clone(&overruns[i]),
                epoch,
                tick_interval: options.tick_interval,
                proc_delay: options.proc_delay,
                egress_pace: options.egress_pace,
                drain_idle: options.drain_idle,
                drain_batch: options.drain_batch.max(1),
                ack_pool: co_wire::AckBufPool::new(),
                frame_scratch: Vec::new(),
                pdu_scratch: Vec::new(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("co-entity-{i}"))
                    .spawn(move || runtime.run())
                    .expect("spawn entity thread"),
            );
        }
        Ok(Cluster {
            cmd_txs,
            threads,
            epoch,
            n,
            trace: options.trace,
        })
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Submits a payload for causally ordered broadcast at entity `index`.
    /// The submit timestamp is framed in for Tap measurement.
    ///
    /// # Errors
    ///
    /// [`TransportError::NoSuchEntity`] / [`TransportError::NodeGone`].
    pub fn submit(&self, index: usize, payload: Bytes) -> Result<(), TransportError> {
        let tx = self
            .cmd_txs
            .get(index)
            .ok_or(TransportError::NoSuchEntity { index, n: self.n })?;
        let framed = frame_payload(self.epoch, &payload);
        tx.send(Cmd::Submit(framed))
            .map_err(|_| TransportError::NodeGone { index })
    }

    /// Requests shutdown, waits for every node to drain, and returns the
    /// per-node reports (indexed by entity). When tracing was enabled the
    /// per-node traces are merged and analyzed once ([`co_trace::analyze`]
    /// with default thresholds), and the resulting cluster-wide
    /// [`co_trace::SpanReport`] is attached to every report.
    pub fn shutdown(self) -> Vec<NodeReport> {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        let mut reports: Vec<NodeReport> = self
            .threads
            .into_iter()
            .map(|t| t.join().expect("entity thread panicked"))
            .collect();
        if reports.iter().any(|r| r.panicked.is_some()) {
            // A node crashed mid-run. Dump every node's black box to
            // stderr first — the recorder rings are the only record of
            // the cluster's final transitions — then propagate the
            // failure so callers see the panic, not a quiet partial run.
            for r in &reports {
                eprintln!("{}", r.flight_recorder.to_json());
            }
            let victim = reports
                .iter()
                .find(|r| r.panicked.is_some())
                .expect("checked above");
            panic!(
                "entity thread {} panicked: {}",
                victim.id,
                victim.panicked.as_deref().unwrap_or("unknown")
            );
        }
        if self.trace {
            let trace = crate::report::merged_trace(&reports);
            let analysis = co_trace::analyze(&trace, &co_trace::AnomalyConfig::default());
            for report in &mut reports {
                report.span_report = Some(analysis.clone());
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_reaches_all_threads() {
        let cluster = Cluster::start(3, ClusterOptions::default()).unwrap();
        cluster.submit(0, Bytes::from_static(b"hello")).unwrap();
        let reports = cluster.shutdown();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.delivered.len(), 1, "at {}", r.id);
            assert_eq!(&r.delivered[0].2[..], b"hello");
            assert_eq!(r.delivered[0].0, EntityId::new(0));
        }
        // Remote nodes measured a Tap sample; the sender did not (own
        // message).
        assert!(reports[1].tap_samples.len() == 1);
        assert!(reports[0].tap_samples.is_empty());
    }

    #[test]
    fn concurrent_senders_converge() {
        let cluster = Cluster::start(4, ClusterOptions::default()).unwrap();
        for round in 0..5 {
            for i in 0..4 {
                cluster
                    .submit(i, Bytes::from(format!("m-{round}-{i}").into_bytes()))
                    .unwrap();
            }
        }
        let reports = cluster.shutdown();
        for r in &reports {
            assert_eq!(r.delivered.len(), 20, "all 20 messages at {}", r.id);
            // Per-sender FIFO:
            for src in 0..4u32 {
                let seqs: Vec<u64> = r
                    .delivered
                    .iter()
                    .filter(|(s, _, _)| *s == EntityId::new(src))
                    .map(|&(_, seq, _)| seq)
                    .collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                assert_eq!(seqs, sorted, "FIFO from E{src} at {}", r.id);
            }
        }
        // Tco was measured on every received PDU.
        assert!(reports.iter().all(|r| !r.tco_samples.is_empty()));
    }

    #[test]
    fn egress_pacing_delays_but_delivers_everything() {
        // A paced sender serializes its broadcast copies instead of
        // blasting them: throughput drops, the service does not.
        let cluster = Cluster::start(
            3,
            ClusterOptions {
                egress_pace: Duration::from_micros(50),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        for k in 0..6 {
            cluster
                .submit(0, Bytes::from(format!("paced-{k}").into_bytes()))
                .unwrap();
        }
        let reports = cluster.shutdown();
        for r in &reports {
            assert_eq!(r.delivered.len(), 6, "at {}", r.id);
        }
    }

    #[test]
    fn out_of_range_submit_rejected() {
        let cluster = Cluster::start(2, ClusterOptions::default()).unwrap();
        assert!(matches!(
            cluster.submit(5, Bytes::new()),
            Err(TransportError::NoSuchEntity { index: 5, n: 2 })
        ));
        cluster.shutdown();
    }

    #[test]
    fn empty_run_shuts_down_cleanly() {
        let cluster = Cluster::start(2, ClusterOptions::default()).unwrap();
        let reports = cluster.shutdown();
        assert!(reports.iter().all(|r| r.delivered.is_empty()));
    }
}
