//! Plain-text result tables with CSV export.

use std::path::{Path, PathBuf};

/// A titled table of experiment results.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, column), for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates IO errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Extracts `--csv <path>` from the process arguments, if present.
pub fn csv_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// Emits a table to stdout and, when requested via `--csv`, to a file
/// (suffixing the experiment id when several tables are written).
pub fn emit(table: &Table, csv: Option<&Path>, suffix: &str) {
    table.print();
    println!();
    if let Some(base) = csv {
        let path = if suffix.is_empty() {
            base.to_path_buf()
        } else {
            let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
            let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("csv");
            base.with_file_name(format!("{stem}-{suffix}.{ext}"))
        };
        match table.write_csv(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "value"]);
        t.push(vec!["2".into(), "10.5".into()]);
        t.push(vec!["4".into(), "21.0".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("n  value"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["n,value", "2,10.5", "4,21.0"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.push(vec!["hello, \"world\"".into()]);
        assert_eq!(
            t.to_csv().lines().nth(1).unwrap(),
            "\"hello, \"\"world\"\"\""
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.cell(1, 1), "21.0");
    }
}
