//! Runs every experiment in sequence — the full §5 reproduction.
//! Flags: `--quick` (small sweeps), `--csv <path>` (also write CSVs).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = co_experiments::csv_arg();
    let runs: Vec<(&str, Vec<co_experiments::Table>)> = vec![
        ("fig8", co_experiments::experiments::fig8::run(quick)),
        (
            "ack_latency",
            co_experiments::experiments::ack_latency::run(quick),
        ),
        (
            "buffer_occupancy",
            co_experiments::experiments::buffer_occupancy::run(quick),
        ),
        (
            "pdu_overhead",
            co_experiments::experiments::pdu_overhead::run(quick),
        ),
        (
            "retransmission",
            co_experiments::experiments::retransmission::run(quick),
        ),
        (
            "deferred",
            co_experiments::experiments::deferred::run(quick),
        ),
        ("vs_isis", co_experiments::experiments::vs_isis::run(quick)),
        (
            "window_sweep",
            co_experiments::experiments::window_sweep::run(quick),
        ),
        (
            "ablation_strict",
            co_experiments::experiments::ablation_strict::run(quick),
        ),
    ];
    for (id, tables) in &runs {
        for (i, table) in tables.iter().enumerate() {
            co_experiments::experiments::emit_table(table, csv.as_deref(), id, i);
        }
    }
}
