//! Prints the `vs_isis` experiment (see crate docs and EXPERIMENTS.md).
//! Flags: `--quick` (small sweep), `--csv <path>` (also write CSV).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = co_experiments::csv_arg();
    for (i, table) in co_experiments::experiments::vs_isis::run(quick)
        .iter()
        .enumerate()
    {
        co_experiments::experiments::emit_table(table, csv.as_deref(), "vs_isis", i);
    }
}
