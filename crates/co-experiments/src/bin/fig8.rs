//! Prints the `fig8` experiment (see crate docs and EXPERIMENTS.md).
//! Flags: `--quick` (small sweep), `--csv <path>` (also write CSV).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = co_experiments::csv_arg();
    for (i, table) in co_experiments::experiments::fig8::run(quick)
        .iter()
        .enumerate()
    {
        co_experiments::experiments::emit_table(table, csv.as_deref(), "fig8", i);
    }
}
