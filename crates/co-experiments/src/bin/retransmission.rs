//! Prints the `retransmission` experiment (see crate docs and EXPERIMENTS.md).
//! Flags: `--quick` (small sweep), `--csv <path>` (also write CSV).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = co_experiments::csv_arg();
    for (i, table) in co_experiments::experiments::retransmission::run(quick)
        .iter()
        .enumerate()
    {
        co_experiments::experiments::emit_table(table, csv.as_deref(), "retransmission", i);
    }
}
