//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! The paper's evaluation consists of **Figure 8** (Tco and Tap versus
//! cluster size) plus a set of quantitative claims in the §5 prose. Every
//! one of them has a runner here; the `src/bin/` wrappers print the
//! paper-style rows and optionally write CSV:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig8` | Figure 8: per-PDU processing time and app-to-app delay vs `n` |
//! | `ack_latency` | §5: pre-ack after `R`, ack after `2R` |
//! | `buffer_occupancy` | §5: buffer requirement O(n) (≈ `2nW`) |
//! | `pdu_overhead` | §5: PDU length O(n) |
//! | `retransmission` | §5: selective vs go-back-n retransmission |
//! | `deferred` | §4.2/§5: deferred confirmation O(n) vs O(n²) PDUs |
//! | `vs_isis` | §5: sequence numbers vs ISIS virtual clocks |
//! | `window_sweep` | ablation: flow-condition window `W` |
//!
//! Run everything with `cargo run -p co-experiments --bin all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod runner;
mod table;

pub use runner::{
    run_co, run_co_for, AblationSwitches, CoRunParams, CoRunResult, NodeOutcome, Senders,
};
pub use table::{csv_arg, Table};
