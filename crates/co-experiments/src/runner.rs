//! Shared simulation runner: build a CO cluster on `mc-net`, drive a
//! workload, collect per-node outcomes.

use bytes::Bytes;
use causal_order::EntityId;
use co_baselines::{BroadcasterNode, CoBroadcaster};
use co_protocol::{Config, DeferralPolicy, Metrics, RetransmissionPolicy};
use mc_net::{NetStats, SimConfig, SimTime, Simulator};

/// Which entities generate application traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Senders {
    /// Every entity submits (the paper's file-transfer-like workload).
    All,
    /// Only `E_1` submits (stresses the confirmation machinery).
    One,
}

/// Parameters of one simulated CO run.
#[derive(Debug, Clone)]
pub struct CoRunParams {
    /// Cluster size.
    pub n: usize,
    /// Flow-condition window `W`.
    pub window: u64,
    /// Confirmation policy.
    pub deferral: DeferralPolicy,
    /// Retransmission policy.
    pub retransmission: RetransmissionPolicy,
    /// Network configuration.
    pub sim: SimConfig,
    /// Messages submitted per sending entity.
    pub messages_per_sender: usize,
    /// Microseconds between consecutive submissions at one entity.
    pub submit_interval_us: u64,
    /// Which entities send.
    pub senders: Senders,
    /// Payload size in bytes.
    pub payload: usize,
}

impl Default for CoRunParams {
    fn default() -> Self {
        CoRunParams {
            n: 3,
            window: 32,
            deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
            retransmission: RetransmissionPolicy::Selective,
            sim: SimConfig::default(),
            messages_per_sender: 20,
            submit_interval_us: 500,
            senders: Senders::All,
            payload: 64,
        }
    }
}

/// What one node saw during the run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The entity.
    pub id: EntityId,
    /// Deliveries in order: `(origin, origin_seq, when)`.
    pub delivered: Vec<(EntityId, u64, SimTime)>,
    /// When this entity submitted its k-th payload (k-th entry; the
    /// payload carries `origin_seq = k+1`).
    pub submitted: Vec<SimTime>,
    /// Engine counters.
    pub metrics: Metrics,
    /// Peak protocol-buffer occupancy in PDUs.
    pub peak_held: usize,
    /// Whether the entity ended the run fully stable: nothing held or
    /// queued, and everything accepted known globally pre-acked — the
    /// liveness oracle `co-check` also asserts.
    pub fully_stable: bool,
}

/// Aggregate result of one run.
#[derive(Debug, Clone)]
pub struct CoRunResult {
    /// Cluster size.
    pub n: usize,
    /// Per-node outcomes, indexed by entity.
    pub nodes: Vec<NodeOutcome>,
    /// Network statistics.
    pub net: NetStats,
    /// Simulated time when the run went idle.
    pub makespan: SimTime,
    /// Total messages submitted across the cluster.
    pub total_messages: usize,
}

impl CoRunResult {
    /// Every entity delivered every message exactly once.
    pub fn all_delivered(&self) -> bool {
        self.nodes
            .iter()
            .all(|node| node.delivered.len() == self.total_messages)
    }

    /// Submit→deliver latencies (µs) for all `(origin, seq)` pairs at all
    /// *receiving* entities.
    pub fn delivery_latencies_us(&self) -> Vec<u64> {
        let mut latencies = Vec::new();
        for node in &self.nodes {
            for &(origin, seq, at) in &node.delivered {
                if origin == node.id {
                    continue;
                }
                let submit = self.nodes[origin.index()]
                    .submitted
                    .get((seq - 1) as usize)
                    .copied();
                if let Some(t0) = submit {
                    latencies.push(at.since(t0).as_micros());
                }
            }
        }
        latencies
    }

    /// Total PDUs broadcast by all entities (each counted once, not per
    /// link copy), split by class: `(data, retransmissions, ret, ack_only)`.
    pub fn pdu_breakdown(&self) -> (u64, u64, u64, u64) {
        let mut out = (0, 0, 0, 0);
        for node in &self.nodes {
            out.0 += node.metrics.data_sent();
            out.1 += node.metrics.retransmissions_sent();
            out.2 += node.metrics.ret_sent();
            out.3 += node.metrics.ack_only_sent();
        }
        out
    }

    /// All PDUs broadcast (sum of the breakdown).
    pub fn total_pdus(&self) -> u64 {
        let (a, b, c, d) = self.pdu_breakdown();
        a + b + c + d
    }

    /// Rebuilds the application-level event trace for the §2.2 property
    /// oracles: per entity, broadcast and delivery events merged in
    /// timestamp order (ties resolved broadcast-first, which only weakens
    /// the causal requirements — conservative for checking).
    pub fn run_trace(&self) -> causal_order::properties::RunTrace {
        use causal_order::MsgId;
        let mut trace = causal_order::properties::RunTrace::new(self.n);
        let msg_id = |origin: EntityId, seq: u64| MsgId(origin.index() as u64 * 1_000_000 + seq);
        for node in &self.nodes {
            #[derive(Clone, Copy)]
            enum Ev {
                Broadcast(u64),
                Deliver(EntityId, u64),
            }
            let mut events: Vec<(SimTime, u8, Ev)> = Vec::new();
            for (k, &at) in node.submitted.iter().enumerate() {
                events.push((at, 0, Ev::Broadcast(k as u64 + 1)));
            }
            for &(origin, seq, at) in &node.delivered {
                events.push((at, 1, Ev::Deliver(origin, seq)));
            }
            events.sort_by_key(|&(at, kind, _)| (at, kind));
            for (_, _, ev) in events {
                match ev {
                    Ev::Broadcast(seq) => trace.record_broadcast(node.id, msg_id(node.id, seq)),
                    Ev::Deliver(origin, seq) => trace.record_delivery(node.id, msg_id(origin, seq)),
                }
            }
        }
        trace
    }
}

/// Extra engine switches for ablation runs.
#[derive(Debug, Clone, Copy)]
pub struct AblationSwitches {
    /// `Config::control_updates_al`: whether `RET`/`AckOnly` PDUs update
    /// the knowledge matrices. `false` = paper-strict (only data PDUs
    /// carry knowledge).
    pub control_updates_al: bool,
}

impl Default for AblationSwitches {
    fn default() -> Self {
        AblationSwitches {
            control_updates_al: true,
        }
    }
}

/// Like [`run_co`] but stops at simulated `deadline` instead of waiting
/// for quiescence — required for ablations that disable the liveness
/// extensions (a paper-strict run may never quiesce after the last data
/// PDU, exactly the gap the extensions close).
pub fn run_co_for(
    params: &CoRunParams,
    switches: AblationSwitches,
    deadline: SimTime,
) -> CoRunResult {
    let (mut sim, total_messages) = build_sim(params, switches);
    sim.run_until(deadline);
    collect(params, sim, total_messages)
}

/// Runs one simulated CO workload to quiescence.
///
/// # Panics
///
/// Panics on invalid parameters (`n < 2`) or if the run exceeds the
/// simulator's event budget (livelock).
pub fn run_co(params: &CoRunParams) -> CoRunResult {
    let (mut sim, total_messages) = build_sim(params, AblationSwitches::default());
    sim.run_until_idle();
    collect(params, sim, total_messages)
}

fn build_sim(
    params: &CoRunParams,
    switches: AblationSwitches,
) -> (Simulator<BroadcasterNode<CoBroadcaster>>, usize) {
    let n = params.n;
    let nodes: Vec<BroadcasterNode<CoBroadcaster>> = (0..n)
        .map(|i| {
            let cfg = Config::builder(1, n, EntityId::new(i as u32))
                .window(params.window)
                .deferral(params.deferral)
                .retransmission(params.retransmission)
                .control_updates_al(switches.control_updates_al)
                .build()
                .expect("valid config");
            BroadcasterNode::new(CoBroadcaster::new(cfg).expect("valid entity"))
        })
        .collect();
    let mut sim = Simulator::new(params.sim.clone(), nodes);

    let senders: Vec<usize> = match params.senders {
        Senders::All => (0..n).collect(),
        Senders::One => vec![0],
    };
    for k in 0..params.messages_per_sender {
        for &s in &senders {
            // Stagger entities slightly so submissions are not simultaneous.
            let at =
                SimTime::from_micros(k as u64 * params.submit_interval_us + (s as u64 * 7) % 97);
            let payload = Bytes::from(vec![s as u8; params.payload.max(1)]);
            sim.schedule_command(at, EntityId::new(s as u32), payload);
        }
    }
    let total_messages = senders.len() * params.messages_per_sender;
    (sim, total_messages)
}

fn collect(
    params: &CoRunParams,
    sim: Simulator<BroadcasterNode<CoBroadcaster>>,
    total_messages: usize,
) -> CoRunResult {
    let n = params.n;
    let nodes = sim
        .nodes()
        .map(|(id, node)| NodeOutcome {
            id,
            delivered: node
                .delivered()
                .iter()
                .map(|d| (d.origin, d.origin_seq, d.at))
                .collect(),
            submitted: node.submitted().to_vec(),
            metrics: *node.inner().entity().metrics(),
            peak_held: node.inner().entity().peak_held_pdus(),
            fully_stable: node.inner().entity().is_fully_stable(),
        })
        .collect();
    CoRunResult {
        n,
        nodes,
        net: sim.stats(),
        makespan: sim.now(),
        total_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_delivers_everything() {
        let result = run_co(&CoRunParams::default());
        assert_eq!(result.total_messages, 60);
        assert!(
            result.all_delivered(),
            "per-node: {:?}",
            result
                .nodes
                .iter()
                .map(|o| o.delivered.len())
                .collect::<Vec<_>>()
        );
        assert!(result.makespan > SimTime::ZERO);
        assert!(!result.delivery_latencies_us().is_empty());
    }

    #[test]
    fn single_sender_run() {
        let result = run_co(&CoRunParams {
            senders: Senders::One,
            messages_per_sender: 10,
            ..CoRunParams::default()
        });
        assert_eq!(result.total_messages, 10);
        assert!(result.all_delivered());
        let (data, _, _, _) = result.pdu_breakdown();
        assert_eq!(data, 10);
    }

    #[test]
    fn latencies_reference_submit_times() {
        let result = run_co(&CoRunParams {
            messages_per_sender: 5,
            ..CoRunParams::default()
        });
        let lats = result.delivery_latencies_us();
        // 15 messages, each delivered at 2 remote nodes.
        assert_eq!(lats.len(), 30);
        assert!(lats.iter().all(|&l| l > 0));
    }
}
