//! §5 claim: with confirmations broadcast in parallel, a PDU is
//! pre-acknowledged `R` after its acceptance and acknowledged (hence
//! delivered) `2R` after it — about `3R` after the original transmission,
//! where `R` is the maximum propagation delay.
//!
//! We simulate a single broadcast over a uniform-`R` network with immediate
//! confirmations and negligible processing time, and report the delivery
//! latency at remote entities in units of `R`.

use co_protocol::DeferralPolicy;
use mc_net::{DelayModel, SimConfig, SimDuration};

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// Runs the sweep over cluster sizes.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![2, 4]
    } else {
        vec![2, 3, 4, 6, 8, 12, 16]
    };
    let r_us = 1_000u64;
    let mut table = Table::new(
        "Acknowledgment latency (paper: acceptance + 2R ≈ 3R end-to-end)",
        &[
            "n",
            "R [µs]",
            "mean delivery latency [µs]",
            "latency / R",
            "paper bound",
        ],
    );
    for &n in &sizes {
        let mean = measure(n, r_us);
        table.push(vec![
            n.to_string(),
            r_us.to_string(),
            format!("{mean:.0}"),
            format!("{:.2}", mean / r_us as f64),
            "≈3R".to_string(),
        ]);
    }
    vec![table]
}

/// Mean remote delivery latency (µs) of a single broadcast in a cluster of
/// `n` with uniform propagation delay `r_us`.
pub fn measure(n: usize, r_us: u64) -> f64 {
    let params = CoRunParams {
        n,
        deferral: DeferralPolicy::Immediate,
        sim: SimConfig {
            network: DelayModel::Uniform(SimDuration::from_micros(r_us)).into(),
            proc_time: SimDuration::from_micros(1),
            ..SimConfig::default()
        },
        messages_per_sender: 1,
        senders: Senders::One,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    assert!(result.all_delivered(), "single message must be delivered");
    let lats = result.delivery_latencies_us();
    lats.iter().sum::<u64>() as f64 / lats.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_about_three_r() {
        // Acceptance at R, pre-ack ≈ 2R, ack ≈ 3R. Allow processing slack.
        let mean = measure(4, 1_000);
        assert!(
            (2_000.0..4_500.0).contains(&mean),
            "delivery latency {mean}µs should be ≈3R (3000µs)"
        );
    }

    #[test]
    fn two_entity_cluster_is_faster() {
        // With n = 2 the self-inference rule allows pre-ack on first
        // receipt: delivery needs fewer rounds.
        let mean2 = measure(2, 1_000);
        assert!(mean2 <= measure(8, 1_000) + 500.0);
    }

    #[test]
    fn quick_table_shape() {
        let tables = run(true);
        assert_eq!(tables[0].len(), 2);
    }
}
