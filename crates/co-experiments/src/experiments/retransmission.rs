//! §5 claim: "only the PDUs lost are retransmitted, i.e. the selective
//! retransmission is adopted … protocols which provide the TO service use
//! the go-back-n retransmission scheme where all PDUs preceding the lost
//! PDU are retransmitted."
//!
//! Three systems under the same i.i.d. loss sweep:
//!
//! * CO with selective retransmission (the paper's scheme),
//! * CO with go-back-n (ablation: same protocol, worse recovery),
//! * the TO sequencer baseline (go-back-n by construction).
//!
//! Expected shape: all deliver everything, but the go-back-n variants
//! retransmit a growing multiple of what was actually lost.

use bytes::Bytes;
use causal_order::EntityId;
use co_baselines::{BroadcasterNode, SequencerEntity};
use co_protocol::{DeferralPolicy, RetransmissionPolicy};
use mc_net::{LossModel, SimConfig, SimTime, Simulator};

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// Result of one protocol × loss-rate cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Fraction of (message, receiver) pairs delivered, in `[0, 1]`.
    pub delivered: f64,
    /// Data PDUs rebroadcast in recovery.
    pub retransmissions: u64,
    /// Control PDUs requesting retransmission (RET / NACK).
    pub requests: u64,
    /// Wall-clock of the simulated run, ms.
    pub makespan_ms: f64,
}

/// Runs the loss sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let rates: Vec<f64> = if quick {
        vec![0.0, 0.10]
    } else {
        vec![0.0, 0.01, 0.02, 0.05, 0.10, 0.20]
    };
    let (n, messages) = if quick { (3, 20) } else { (4, 60) };
    let mut table = Table::new(
        "Retransmission under i.i.d. loss (selective vs go-back-n)",
        &[
            "loss",
            "protocol",
            "delivered",
            "retransmitted PDUs",
            "requests",
            "makespan [ms]",
        ],
    );
    for &p in &rates {
        for (name, cell) in [
            (
                "CO selective",
                co_cell(n, messages, p, RetransmissionPolicy::Selective),
            ),
            (
                "CO go-back-n",
                co_cell(n, messages, p, RetransmissionPolicy::GoBackN),
            ),
            ("TO sequencer (gbn)", to_cell(n, messages, p)),
        ] {
            table.push(vec![
                format!("{:.0}%", p * 100.0),
                name.to_string(),
                format!("{:.1}%", cell.delivered * 100.0),
                cell.retransmissions.to_string(),
                cell.requests.to_string(),
                format!("{:.1}", cell.makespan_ms),
            ]);
        }
    }
    vec![table]
}

/// One CO run under loss.
pub fn co_cell(n: usize, messages: usize, loss: f64, policy: RetransmissionPolicy) -> Cell {
    let params = CoRunParams {
        n,
        retransmission: policy,
        deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
        sim: SimConfig {
            loss: LossModel::Iid { p: loss },
            seed: 42,
            ..SimConfig::default()
        },
        messages_per_sender: messages,
        submit_interval_us: 400,
        senders: Senders::All,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    let expected = (result.total_messages * n) as f64;
    let got: usize = result.nodes.iter().map(|o| o.delivered.len()).sum();
    let (_, retrans, ret, _) = result.pdu_breakdown();
    Cell {
        delivered: got as f64 / expected,
        retransmissions: retrans,
        requests: ret,
        makespan_ms: result.makespan.as_millis_f64(),
    }
}

/// One TO-baseline run under loss.
pub fn to_cell(n: usize, messages: usize, loss: f64) -> Cell {
    let nodes: Vec<BroadcasterNode<SequencerEntity>> = (0..n)
        .map(|i| BroadcasterNode::new(SequencerEntity::new(EntityId::new(i as u32), n)))
        .collect();
    let mut sim = Simulator::new(
        SimConfig {
            loss: LossModel::Iid { p: loss },
            seed: 42,
            ..SimConfig::default()
        },
        nodes,
    );
    for k in 0..messages {
        for s in 0..n {
            sim.schedule_command(
                SimTime::from_micros(k as u64 * 400 + s as u64 * 13),
                EntityId::new(s as u32),
                Bytes::from(vec![s as u8; 32]),
            );
        }
    }
    sim.run_until_idle();
    let expected = (messages * n * n) as f64;
    let got: usize = sim.nodes().map(|(_, node)| node.delivered().len()).sum();
    let retransmissions: u64 = sim
        .nodes()
        .map(|(_, node)| node.inner().retransmissions_sent)
        .sum();
    // NACK count: approximate via discarded-triggered requests — count
    // messages of kind Nack is not directly visible, so report discards.
    let requests: u64 = sim.nodes().map(|(_, node)| node.inner().discarded).sum();
    Cell {
        delivered: got as f64 / expected,
        retransmissions,
        requests,
        makespan_ms: sim.now().as_millis_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_no_retransmission() {
        let cell = co_cell(3, 10, 0.0, RetransmissionPolicy::Selective);
        assert_eq!(cell.delivered, 1.0);
        assert_eq!(cell.retransmissions, 0);
    }

    #[test]
    fn co_delivers_fully_under_loss() {
        let cell = co_cell(3, 20, 0.10, RetransmissionPolicy::Selective);
        assert_eq!(cell.delivered, 1.0, "selective CO must recover everything");
        assert!(cell.retransmissions > 0);
    }

    #[test]
    fn go_back_n_retransmits_more() {
        let sel = co_cell(4, 40, 0.10, RetransmissionPolicy::Selective);
        let gbn = co_cell(4, 40, 0.10, RetransmissionPolicy::GoBackN);
        assert_eq!(sel.delivered, 1.0);
        assert_eq!(gbn.delivered, 1.0);
        assert!(
            gbn.retransmissions > sel.retransmissions,
            "go-back-n ({}) must resend more than selective ({})",
            gbn.retransmissions,
            sel.retransmissions
        );
    }

    #[test]
    fn to_baseline_mostly_delivers() {
        // Inclusive bound: the NACK-based sequencer legitimately lands
        // exactly on the threshold under some RNG streams (a lost final
        // PDU has no successor to trigger its NACK), and the test must
        // hold for any conforming stream, not one exact loss pattern.
        let cell = to_cell(3, 20, 0.05);
        assert!(cell.delivered >= 0.95, "delivered {}", cell.delivered);
        // Same seed, same cell: the sweep is deterministic end to end.
        let again = to_cell(3, 20, 0.05);
        assert_eq!(cell.delivered, again.delivered);
        assert_eq!(cell.retransmissions, again.retransmissions);
        assert_eq!(cell.requests, again.requests);
        assert_eq!(cell.makespan_ms, again.makespan_ms);
    }
}
