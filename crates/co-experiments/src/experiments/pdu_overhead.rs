//! §5 claim: "Since each PDU carries n receipt confirmations in the ACK
//! field …, the length of PDU is O(n)."
//!
//! We encode each PDU kind for growing cluster sizes and report exact wire
//! sizes plus the per-entity increment.

use bytes::Bytes;
use causal_order::{EntityId, Seq};
use co_wire::{AckOnlyPdu, DataPdu, Pdu, RetPdu};

use crate::table::Table;

/// Builds a representative data PDU for a cluster of `n`.
pub fn sample_data(n: usize, payload: usize) -> Pdu {
    Pdu::Data(DataPdu {
        cid: 1,
        src: EntityId::new(0),
        seq: Seq::new(100),
        ack: vec![Seq::new(100); n],
        buf: 4096,
        data: Bytes::from(vec![0u8; payload]),
    })
}

/// Builds a representative RET PDU for a cluster of `n`.
pub fn sample_ret(n: usize) -> Pdu {
    Pdu::Ret(RetPdu {
        cid: 1,
        src: EntityId::new(0),
        lsrc: EntityId::new(1),
        lseq: Seq::new(100),
        ack: vec![Seq::new(100); n],
        buf: 4096,
    })
}

/// Builds a representative confirmation-only PDU for a cluster of `n`.
pub fn sample_ack_only(n: usize) -> Pdu {
    Pdu::AckOnly(AckOnlyPdu {
        cid: 1,
        src: EntityId::new(0),
        ack: vec![Seq::new(100); n],
        packed: vec![Seq::new(100); n],
        acked: vec![Seq::new(100); n],
        buf: 4096,
    })
}

/// Runs the size sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![2, 8]
    } else {
        vec![2, 3, 4, 8, 16, 32, 64, 128, 256]
    };
    let mut table = Table::new(
        "PDU wire size vs n (paper: O(n) from the ACK field)",
        &[
            "n",
            "DATA+64B [B]",
            "RET [B]",
            "ACKONLY [B]",
            "bytes/entity (DATA)",
        ],
    );
    let mut prev: Option<(usize, usize)> = None;
    for &n in &sizes {
        let data = sample_data(n, 64).encoded_len();
        let ret = sample_ret(n).encoded_len();
        let ack = sample_ack_only(n).encoded_len();
        let per_entity = prev
            .map(|(pn, pd)| format!("{:.1}", (data - pd) as f64 / (n - pn) as f64))
            .unwrap_or_else(|| "-".to_string());
        table.push(vec![
            n.to_string(),
            data.to_string(),
            ret.to_string(),
            ack.to_string(),
            per_entity,
        ]);
        prev = Some((n, data));
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_exactly_linear() {
        let d2 = sample_data(2, 64).encoded_len();
        let d3 = sample_data(3, 64).encoded_len();
        let d100 = sample_data(100, 64).encoded_len();
        assert_eq!(d3 - d2, 8, "8 bytes per extra entity (one u64 ack)");
        assert_eq!(d100 - d2, 98 * 8);
    }

    #[test]
    fn ack_only_grows_three_vectors_per_entity() {
        // AckOnly carries three vectors (ack + packed + acked): 24 B per
        // entity.
        let a2 = sample_ack_only(2).encoded_len();
        let a3 = sample_ack_only(3).encoded_len();
        assert_eq!(a3 - a2, 24);
    }

    #[test]
    fn table_has_expected_columns() {
        let tables = run(true);
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[0].cell(0, 0), "2");
    }
}
