//! Ablation: the paper's *strict* mechanism versus this reproduction's
//! liveness extensions.
//!
//! "Strict" disables `Config::control_updates_al`: `AckOnly`/`RET` PDUs no
//! longer update the knowledge matrices, so — as in the paper's text —
//! only **data** PDUs carry acceptance knowledge, and pre-acknowledgment
//! knowledge travels exclusively through the PACK-time `PAL` mechanism.
//!
//! Under the paper's own continuous all-senders workload this works for
//! the *bulk* of the stream (each data PDU confirms its predecessors), but
//! the **tail** can never complete: after the last data PDU there is no
//! carrier left for the final confirmation rounds. The experiment runs
//! both configurations to a fixed simulated deadline and reports how much
//! of the stream reached the application.

use co_protocol::DeferralPolicy;
use mc_net::SimTime;

use crate::runner::{run_co_for, AblationSwitches, CoRunParams, Senders};
use crate::table::Table;

/// Delivery completion and latency for one configuration at the deadline:
/// `(delivered_fraction, mean_latency_us_of_delivered)`.
pub fn measure(n: usize, messages: usize, strict: bool) -> (f64, f64) {
    let params = CoRunParams {
        n,
        messages_per_sender: messages,
        submit_interval_us: 500,
        senders: Senders::All,
        deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
        ..CoRunParams::default()
    };
    // Generous horizon: ~4× the submission phase.
    let deadline = SimTime::from_micros(messages as u64 * 500 * 4 + 200_000);
    let result = run_co_for(
        &params,
        AblationSwitches {
            control_updates_al: !strict,
        },
        deadline,
    );
    let expected = (result.total_messages * n) as f64;
    let got: usize = result.nodes.iter().map(|o| o.delivered.len()).sum();
    let lats = result.delivery_latencies_us();
    let mean = lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64;
    (got as f64 / expected, mean)
}

/// Runs the ablation.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick { vec![3] } else { vec![2, 3, 4, 6, 8] };
    let messages = if quick { 15 } else { 40 };
    let mut table = Table::new(
        "Ablation: paper-strict knowledge flow vs liveness extensions (fixed deadline)",
        &[
            "n",
            "strict delivered",
            "extended delivered",
            "strict latency [µs]",
            "extended latency [µs]",
        ],
    );
    for &n in &sizes {
        let (strict_frac, strict_lat) = measure(n, messages, true);
        let (ext_frac, ext_lat) = measure(n, messages, false);
        table.push(vec![
            n.to_string(),
            format!("{:.1}%", strict_frac * 100.0),
            format!("{:.1}%", ext_frac * 100.0),
            format!("{strict_lat:.0}"),
            format!("{ext_lat:.0}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_mode_completes() {
        let (frac, _) = measure(3, 15, false);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn strict_mode_delivers_bulk_but_not_tail() {
        let (frac, _) = measure(3, 15, true);
        assert!(
            frac > 0.5,
            "bulk must flow through data-PDU confirmations: {frac}"
        );
        assert!(
            frac < 1.0,
            "the tail cannot complete without ack-only knowledge: {frac}"
        );
    }
}
