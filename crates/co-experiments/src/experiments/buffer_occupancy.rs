//! §5 claim: "each PDU p is acknowledged when 2nW PDUs are received after
//! p is received … This means that the required buffer size is O(n)."
//!
//! We run the continuous all-senders workload, record the peak number of
//! PDUs an entity holds in its protocol buffers (`RRL` + `PRL` + reorder),
//! and compare against the paper's `2nW` bound.

use co_protocol::DeferralPolicy;
use mc_net::{DelayModel, SimConfig, SimDuration};

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// Runs the sweep over `n` (at fixed `W`) and over `W` (at fixed `n`).
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![2, 4]
    } else {
        vec![2, 3, 4, 6, 8, 12]
    };
    let windows: Vec<u64> = if quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    let mut by_n = Table::new(
        "Peak buffer occupancy vs n (W = 8; paper bound 2nW)",
        &["n", "W", "peak held PDUs", "bound 2nW", "within bound"],
    );
    for &n in &sizes {
        let peak = measure(n, 8);
        let bound = 2 * n as u64 * 8;
        by_n.push(vec![
            n.to_string(),
            "8".to_string(),
            peak.to_string(),
            bound.to_string(),
            (peak as u64 <= bound).to_string(),
        ]);
    }

    let mut by_w = Table::new(
        "Peak buffer occupancy vs W (n = 4; paper bound 2nW)",
        &["n", "W", "peak held PDUs", "bound 2nW", "within bound"],
    );
    for &w in &windows {
        let peak = measure(4, w);
        let bound = 2 * 4 * w;
        by_w.push(vec![
            "4".to_string(),
            w.to_string(),
            peak.to_string(),
            bound.to_string(),
            (peak as u64 <= bound).to_string(),
        ]);
    }
    vec![by_n, by_w]
}

/// Peak held PDUs across all entities for a continuous workload.
pub fn measure(n: usize, window: u64) -> usize {
    let params = CoRunParams {
        n,
        window,
        deferral: DeferralPolicy::Deferred { timeout_us: 2_000 },
        sim: SimConfig {
            network: DelayModel::Uniform(SimDuration::from_micros(500)).into(),
            proc_time: SimDuration::from_micros(5),
            ..SimConfig::default()
        },
        messages_per_sender: 50,
        submit_interval_us: 50, // pressure: submit faster than one RTT
        senders: Senders::All,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    assert!(result.all_delivered());
    result.nodes.iter().map(|o| o.peak_held).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_stays_within_paper_bound() {
        let peak = measure(3, 4);
        assert!(peak > 0);
        assert!(peak as u64 <= 2 * 3 * 4, "peak {peak} exceeds 2nW = 24");
    }

    #[test]
    fn occupancy_grows_with_n() {
        let small = measure(2, 8);
        let large = measure(6, 8);
        assert!(
            large >= small,
            "holding more senders' PDUs needs more buffer"
        );
    }

    #[test]
    fn quick_tables_shape() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 2);
    }
}
