//! §1/§5 comparison against **ISIS CBCAST**:
//!
//! * ISIS orders with virtual (vector) clocks and needs a reliable
//!   transport; "the PDU loss cannot be detected by the virtual clocks".
//! * The CO protocol orders with sequence numbers, detects loss with them,
//!   and recovers with selective retransmission.
//!
//! Two scenarios: a clean network (both deliver; compare cost and latency)
//! and a lossy network (CO recovers to 100%; CBCAST strands messages in
//! its hold queue with no way to even notice).

use bytes::Bytes;
use causal_order::EntityId;
use co_baselines::{BroadcasterNode, CbcastEntity};
use mc_net::{LossModel, SimConfig, SimTime, Simulator};

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// Outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Fraction of (message, receiver) deliveries that happened.
    pub delivered: f64,
    /// Messages stuck undeliverable at run end (CBCAST hold queue).
    pub stranded: u64,
    /// Mean delivery latency µs (delivered ones only; CO measures
    /// submit→ack-delivery, CBCAST submit→deliverable).
    pub mean_latency_us: f64,
}

/// CBCAST over the simulator.
pub fn run_isis(n: usize, messages: usize, loss: f64) -> Outcome {
    let nodes: Vec<BroadcasterNode<CbcastEntity>> = (0..n)
        .map(|i| BroadcasterNode::new(CbcastEntity::new(EntityId::new(i as u32), n)))
        .collect();
    let mut sim = Simulator::new(
        SimConfig {
            loss: LossModel::Iid { p: loss },
            seed: 7,
            ..SimConfig::default()
        },
        nodes,
    );
    for k in 0..messages {
        for s in 0..n {
            sim.schedule_command(
                SimTime::from_micros(k as u64 * 400 + s as u64 * 13),
                EntityId::new(s as u32),
                Bytes::from(vec![s as u8; 32]),
            );
        }
    }
    sim.run_until_idle();
    let expected = (messages * n * n) as f64;
    let got: usize = sim.nodes().map(|(_, node)| node.delivered().len()).sum();
    let stranded: u64 = sim
        .nodes()
        .map(|(_, node)| node.inner().held_messages() as u64)
        .sum();
    // Latency: submit time embedded by position — approximate via recorded
    // submit/delivery timestamps.
    let mut lat_sum = 0u64;
    let mut lat_n = 0u64;
    let submits: Vec<Vec<SimTime>> = sim.nodes().map(|(_, n)| n.submitted().to_vec()).collect();
    for (id, node) in sim.nodes() {
        for d in node.delivered() {
            if d.origin == id {
                continue;
            }
            if let Some(&t0) = submits[d.origin.index()].get((d.origin_seq - 1) as usize) {
                lat_sum += d.at.since(t0).as_micros();
                lat_n += 1;
            }
        }
    }
    Outcome {
        delivered: got as f64 / expected,
        stranded,
        mean_latency_us: lat_sum as f64 / lat_n.max(1) as f64,
    }
}

/// The CO protocol under the same workload.
pub fn run_co_outcome(n: usize, messages: usize, loss: f64) -> Outcome {
    let params = CoRunParams {
        n,
        sim: SimConfig {
            loss: LossModel::Iid { p: loss },
            seed: 7,
            ..SimConfig::default()
        },
        messages_per_sender: messages,
        submit_interval_us: 400,
        senders: Senders::All,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    let expected = (result.total_messages * n) as f64;
    let got: usize = result.nodes.iter().map(|o| o.delivered.len()).sum();
    let stranded: u64 = result
        .nodes
        .iter()
        .map(|o| (result.total_messages - o.delivered.len()) as u64)
        .sum();
    let lats = result.delivery_latencies_us();
    Outcome {
        delivered: got as f64 / expected,
        stranded,
        mean_latency_us: lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64,
    }
}

/// Runs both scenarios.
pub fn run(quick: bool) -> Vec<Table> {
    let (n, messages) = if quick { (3, 15) } else { (4, 50) };
    let mut table = Table::new(
        "CO protocol vs ISIS CBCAST (virtual clocks, reliable-network assumption)",
        &[
            "network",
            "protocol",
            "delivered",
            "stranded msgs",
            "mean latency [µs]",
        ],
    );
    for (label, loss) in [("clean", 0.0), ("5% loss", 0.05)] {
        let co = run_co_outcome(n, messages, loss);
        let isis = run_isis(n, messages, loss);
        for (name, o) in [("CO", &co), ("ISIS CBCAST", &isis)] {
            table.push(vec![
                label.to_string(),
                name.to_string(),
                format!("{:.1}%", o.delivered * 100.0),
                o.stranded.to_string(),
                format!("{:.0}", o.mean_latency_us),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_deliver_fully_on_clean_network() {
        assert_eq!(run_co_outcome(3, 10, 0.0).delivered, 1.0);
        assert_eq!(run_isis(3, 10, 0.0).delivered, 1.0);
    }

    #[test]
    fn only_co_survives_loss() {
        let co = run_co_outcome(3, 20, 0.05);
        let isis = run_isis(3, 20, 0.05);
        assert_eq!(co.delivered, 1.0, "CO recovers everything");
        assert!(
            isis.delivered < 1.0,
            "CBCAST cannot detect loss: delivered {}",
            isis.delivered
        );
        assert!(isis.stranded > 0, "messages stuck in hold queues");
    }
}
