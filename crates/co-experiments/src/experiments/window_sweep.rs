//! Ablation: the flow-condition window `W` (§4.2).
//!
//! Small windows block senders until acceptance knowledge returns (two
//! confirmation rounds away); large windows raise buffer occupancy. The
//! sweep shows the throughput/buffer trade-off that the paper's flow
//! condition `minAL_i ≤ SEQ < minAL_i + min(W, minBUF/(H·2n))` governs.

use co_protocol::DeferralPolicy;
use mc_net::{DelayModel, SimConfig, SimDuration};

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// Outcome of one window setting.
#[derive(Debug, Clone, Copy)]
pub struct WindowPoint {
    /// Messages delivered per simulated second (cluster-wide).
    pub throughput: f64,
    /// Mean submit→deliver latency, µs.
    pub mean_latency_us: f64,
    /// Peak protocol-buffer occupancy (PDUs).
    pub peak_held: usize,
    /// How many submissions were flow-blocked.
    pub flow_blocked: u64,
}

/// Measures one window setting.
pub fn measure(n: usize, window: u64, messages: usize) -> WindowPoint {
    let params = CoRunParams {
        n,
        window,
        deferral: DeferralPolicy::Deferred { timeout_us: 1_000 },
        sim: SimConfig {
            network: DelayModel::Uniform(SimDuration::from_micros(500)).into(),
            proc_time: SimDuration::from_micros(5),
            ..SimConfig::default()
        },
        messages_per_sender: messages,
        submit_interval_us: 100, // faster than the ack round-trip
        senders: Senders::All,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    assert!(result.all_delivered());
    let lats = result.delivery_latencies_us();
    let mean_latency = lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64;
    let seconds = result.makespan.as_micros() as f64 / 1e6;
    WindowPoint {
        throughput: result.total_messages as f64 / seconds,
        mean_latency_us: mean_latency,
        peak_held: result.nodes.iter().map(|o| o.peak_held).max().unwrap_or(0),
        flow_blocked: result.nodes.iter().map(|o| o.metrics.flow_blocked()).sum(),
    }
}

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let windows: Vec<u64> = if quick {
        vec![1, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let (n, messages) = if quick { (3, 20) } else { (4, 80) };
    let mut table = Table::new(
        "Window-size ablation (flow condition, §4.2)",
        &[
            "W",
            "throughput [msg/s]",
            "mean latency [µs]",
            "peak held PDUs",
            "flow-blocked submits",
        ],
    );
    for &w in &windows {
        let p = measure(n, w, messages);
        table.push(vec![
            w.to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.0}", p.mean_latency_us),
            p.peak_held.to_string(),
            p.flow_blocked.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_window_blocks_submissions() {
        let p = measure(3, 1, 20);
        assert!(p.flow_blocked > 0, "W=1 must block a fast submitter");
    }

    #[test]
    fn larger_window_raises_throughput() {
        let w1 = measure(3, 1, 30);
        let w16 = measure(3, 16, 30);
        assert!(
            w16.throughput > w1.throughput,
            "W=16 ({:.0}/s) should beat W=1 ({:.0}/s)",
            w16.throughput,
            w1.throughput
        );
    }

    #[test]
    fn quick_rows() {
        assert_eq!(run(true)[0].len(), 2);
    }
}
