//! §4.2/§5 claim: confirming every received PDU costs O(n²) PDUs per
//! broadcast; **deferred confirmation** (confirm once after hearing from
//! everyone, or on a timer) reduces this to O(n).
//!
//! Workload: a single sender broadcasts a stream; the other `n-1` entities
//! only confirm. We count every *broadcast* PDU (data + confirmation +
//! control) per delivered message under both policies.

use co_protocol::DeferralPolicy;
use mc_net::SimConfig;

use crate::runner::{run_co, CoRunParams, Senders};
use crate::table::Table;

/// PDU cost of one policy at cluster size `n`:
/// `(pdus_per_message, mean_latency_us)`.
pub fn measure(n: usize, messages: usize, deferral: DeferralPolicy) -> (f64, f64) {
    let params = CoRunParams {
        n,
        deferral,
        sim: SimConfig::default(),
        messages_per_sender: messages,
        submit_interval_us: 800,
        senders: Senders::One,
        ..CoRunParams::default()
    };
    let result = run_co(&params);
    assert!(result.all_delivered());
    let lats = result.delivery_latencies_us();
    let mean_latency = lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64;
    (
        result.total_pdus() as f64 / result.total_messages as f64,
        mean_latency,
    )
}

/// Runs the policy × n sweep.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![3, 5]
    } else {
        vec![2, 3, 4, 6, 8, 12, 16]
    };
    let messages = if quick { 15 } else { 40 };
    let mut table = Table::new(
        "Deferred confirmation: broadcast PDUs per delivered message (single sender)",
        &[
            "n",
            "immediate [pdus/msg]",
            "deferred [pdus/msg]",
            "ratio",
            "immediate latency [µs]",
            "deferred latency [µs]",
        ],
    );
    for &n in &sizes {
        let (imm, imm_lat) = measure(n, messages, DeferralPolicy::Immediate);
        let (def, def_lat) = measure(n, messages, DeferralPolicy::Deferred { timeout_us: 2_000 });
        table.push(vec![
            n.to_string(),
            format!("{imm:.2}"),
            format!("{def:.2}"),
            format!("{:.2}", imm / def),
            format!("{imm_lat:.0}"),
            format!("{def_lat:.0}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_sends_fewer_pdus() {
        let (imm, _) = measure(4, 20, DeferralPolicy::Immediate);
        let (def, _) = measure(4, 20, DeferralPolicy::Deferred { timeout_us: 2_000 });
        assert!(
            def < imm,
            "deferred ({def:.2}) must beat immediate ({imm:.2}) pdus/msg"
        );
    }

    #[test]
    fn immediate_cost_grows_with_n() {
        let (small, _) = measure(3, 15, DeferralPolicy::Immediate);
        let (large, _) = measure(8, 15, DeferralPolicy::Immediate);
        assert!(
            large > small,
            "O(n) confirmations per message: {small} vs {large}"
        );
    }

    #[test]
    fn quick_table_rows() {
        let tables = run(true);
        assert_eq!(tables[0].len(), 2);
    }
}
