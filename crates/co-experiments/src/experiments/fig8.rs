//! **Figure 8**: per-PDU processing time (Tco) and application-to-
//! application transmission delay (Tap) versus the number of entities.
//!
//! The paper ran one CO entity per SPARC2 workstation over Ethernet, with
//! every application entity submitting DT requests "continuously like the
//! file transfer", and reported both times growing roughly linearly in `n`
//! (the O(n) per-entity overhead). We run one entity per OS thread over
//! bounded channels and measure the same two quantities with a monotonic
//! clock.

use bytes::Bytes;
use co_transport::{Cluster, ClusterOptions, NodeReport, UdpCluster, UdpOptions};
use std::time::Duration;

use crate::table::Table;

/// Runs the sweep. `quick` shrinks the cluster sizes and message count.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![2, 4]
    } else {
        vec![2, 3, 4, 5, 6, 8, 10, 12]
    };
    let messages = if quick { 40 } else { 200 };
    let headers = [
        "n",
        "Tco mean [µs]",
        "Tco p95 [µs]",
        "Tap mean [ms]",
        "Tap p95 [ms]",
        "pdus processed",
    ];
    let mut table = Table::new(
        "Figure 8: processing time (Tco) and delay (Tap) vs number of entities",
        &headers,
    );
    for &n in &sizes {
        let (tco_mean, tco_p95, tap_mean, tap_p95, processed) = measure(n, messages);
        table.push(vec![
            n.to_string(),
            format!("{:.1}", tco_mean.as_secs_f64() * 1e6),
            format!("{:.1}", tco_p95.as_secs_f64() * 1e6),
            format!("{:.3}", tap_mean.as_secs_f64() * 1e3),
            format!("{:.3}", tap_p95.as_secs_f64() * 1e3),
            processed.to_string(),
        ]);
    }

    // Same sweep over real UDP loopback sockets (smaller sizes: each
    // entity is a socket + thread).
    let udp_sizes: Vec<usize> = if quick { vec![2] } else { vec![2, 3, 4, 6, 8] };
    let udp_messages = if quick { 20 } else { 100 };
    let mut udp_table = Table::new("Figure 8 over UDP loopback (real datagrams)", &headers);
    for &n in &udp_sizes {
        let (tco_mean, tco_p95, tap_mean, tap_p95, processed) = measure_udp(n, udp_messages);
        udp_table.push(vec![
            n.to_string(),
            format!("{:.1}", tco_mean.as_secs_f64() * 1e6),
            format!("{:.1}", tco_p95.as_secs_f64() * 1e6),
            format!("{:.3}", tap_mean.as_secs_f64() * 1e3),
            format!("{:.3}", tap_p95.as_secs_f64() * 1e3),
            processed.to_string(),
        ]);
    }
    vec![table, udp_table]
}

fn summarize(reports: &[NodeReport]) -> (Duration, Duration, Duration, Duration, usize) {
    let mut tco: Vec<Duration> = Vec::new();
    let mut tap: Vec<Duration> = Vec::new();
    for r in reports {
        tco.extend_from_slice(&r.tco_samples);
        tap.extend_from_slice(&r.tap_samples);
    }
    let tco_summary = co_transport::TimingSummary::of(&tco);
    let tap_summary = co_transport::TimingSummary::of(&tap);
    (
        tco_summary.mean,
        tco_summary.p95,
        tap_summary.mean,
        tap_summary.p95,
        tco.len(),
    )
}

/// Wall-clock measurement over real UDP loopback sockets.
pub fn measure_udp(n: usize, messages: usize) -> (Duration, Duration, Duration, Duration, usize) {
    let cluster = UdpCluster::start(n, UdpOptions::default()).expect("udp cluster start");
    for k in 0..messages {
        for i in 0..n {
            cluster
                .submit(i, Bytes::from(format!("m{k}")))
                .expect("submit");
        }
        if k % 16 == 15 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    summarize(&cluster.shutdown())
}

/// One wall-clock measurement at cluster size `n`; every entity submits
/// `messages` payloads ("file transfer" workload).
pub fn measure(n: usize, messages: usize) -> (Duration, Duration, Duration, Duration, usize) {
    let cluster = Cluster::start(n, ClusterOptions::default()).expect("cluster start");
    for k in 0..messages {
        for i in 0..n {
            cluster
                .submit(i, Bytes::from(format!("m{k}")))
                .expect("submit");
        }
        // Pace submissions so the run is not a single burst.
        if k % 16 == 15 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    summarize(&cluster.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows() {
        let tables = run(true);
        assert_eq!(tables.len(), 2, "threaded + udp tables");
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 1);
        // Sanity: Tco mean is positive in both transports.
        let tco: f64 = tables[0].cell(0, 1).parse().unwrap();
        assert!(tco > 0.0);
        let udp_tco: f64 = tables[1].cell(0, 1).parse().unwrap();
        assert!(udp_tco > 0.0);
    }
}
