//! One module per reproduced table/figure. Each exposes
//! `run(quick: bool) -> Vec<Table>`; `quick` shrinks the sweep for CI and
//! integration tests while keeping every code path.

use std::path::Path;

use crate::table::{emit, Table};

/// Prints `table` and optionally writes `<csv-stem>-<id>[-k].csv`.
pub fn emit_table(table: &Table, csv: Option<&Path>, id: &str, index: usize) {
    let suffix = if index == 0 {
        id.to_string()
    } else {
        format!("{id}-{index}")
    };
    emit(table, csv, &suffix);
}

pub mod ablation_strict;
pub mod ack_latency;
pub mod buffer_occupancy;
pub mod deferred;
pub mod fig8;
pub mod pdu_overhead;
pub mod retransmission;
pub mod vs_isis;
pub mod window_sweep;
