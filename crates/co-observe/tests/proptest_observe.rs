//! Property tests for the observability layer: histogram merge is
//! exactly the fold of the union, and the JSONL codec round-trips every
//! event shape — including the span-correlation fields (`via` on F2,
//! the flow-gauge payload) the trace analyzer joins on.

use causal_order::{EntityId, Seq};
use co_observe::jsonl::{self, TraceLine};
use co_observe::{Histogram, ProtocolEvent};
use proptest::prelude::*;

/// Samples spanning all bucket regimes: the zero bucket, small values,
/// and the wide tail.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..1024,
        1024u64..1_000_000,
        1_000_000u64..(1u64 << 41),
    ]
}

fn entity() -> impl Strategy<Value = EntityId> {
    (0u32..64).prop_map(EntityId::new)
}

fn seq() -> impl Strategy<Value = Seq> {
    (1u64..1_000_000).prop_map(Seq::new)
}

fn event() -> impl Strategy<Value = ProtocolEvent> {
    let t = 0u64..10_000_000;
    prop_oneof![
        (0u64..10_000_000).prop_map(|now_us| ProtocolEvent::Submitted { now_us }),
        (0u64..10_000_000).prop_map(|now_us| ProtocolEvent::FlowClosed { now_us }),
        (0u64..10_000_000).prop_map(|now_us| ProtocolEvent::FlowOpened { now_us }),
        (0u64..1_000, 0u64..1_000, t.clone()).prop_map(|(outstanding, limit, now_us)| {
            ProtocolEvent::FlowBlocked {
                outstanding,
                limit,
                now_us,
            }
        }),
        (entity(), seq(), t.clone()).prop_map(|(src, seq, now_us)| ProtocolEvent::DataSent {
            src,
            seq,
            now_us
        }),
        (entity(), seq(), proptest::bool::ANY, t.clone()).prop_map(
            |(src, seq, from_reorder, now_us)| ProtocolEvent::Accepted {
                src,
                seq,
                from_reorder,
                now_us,
            }
        ),
        (entity(), seq(), t.clone()).prop_map(|(src, seq, now_us)| ProtocolEvent::PreAcked {
            src,
            seq,
            now_us
        }),
        (entity(), seq(), 0u64..64, t.clone()).prop_map(|(src, seq, position, now_us)| {
            ProtocolEvent::CpiInserted {
                src,
                seq,
                position,
                now_us,
            }
        }),
        (entity(), seq(), t.clone()).prop_map(|(src, seq, now_us)| ProtocolEvent::Delivered {
            src,
            seq,
            now_us
        }),
        (entity(), seq(), seq(), t.clone()).prop_map(|(src, expected, got, now_us)| {
            ProtocolEvent::F1Detected {
                src,
                expected,
                got,
                now_us,
            }
        }),
        (entity(), seq(), entity(), t.clone()).prop_map(|(src, confirmed, via, now_us)| {
            ProtocolEvent::F2Detected {
                src,
                confirmed,
                via,
                now_us,
            }
        }),
        (entity(), seq(), t.clone()).prop_map(|(src, lseq, now_us)| ProtocolEvent::RetSent {
            src,
            lseq,
            now_us
        }),
        (entity(), seq(), t.clone()).prop_map(|(to, seq, now_us)| ProtocolEvent::RetServed {
            to,
            seq,
            now_us
        }),
        (0u64..100, t.clone())
            .prop_map(|(amount, now_us)| ProtocolEvent::RetUnservable { amount, now_us }),
        t.prop_map(|now_us| ProtocolEvent::AckOnlySent { now_us }),
    ]
}

proptest! {
    #[test]
    fn histogram_merge_equals_union_fold(
        left in proptest::collection::vec(sample(), 0..200),
        right in proptest::collection::vec(sample(), 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a, union);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile_us(q), union.quantile_us(q));
        }
        prop_assert_eq!(a.count(), (left.len() + right.len()) as u64);
    }

    #[test]
    fn jsonl_round_trips_arbitrary_events(
        nodes_events in proptest::collection::vec((0u32..16, event()), 1..64),
    ) {
        let lines: Vec<TraceLine> = nodes_events
            .into_iter()
            .map(|(node, event)| TraceLine::Event { node, event })
            .collect();
        let text: String = lines
            .iter()
            .map(|l| jsonl::encode_line(l) + "\n")
            .collect();
        let strict = jsonl::parse_trace_strict(&text).expect("writer output parses strictly");
        prop_assert_eq!(&strict, &lines);
        let lenient = jsonl::parse_trace(&text);
        prop_assert_eq!(&lenient, &lines);
    }
}
