//! Periodic aggregation of the event stream into snapshots.

use crate::counters::{CounterFold, Counters};
use crate::event::ProtocolEvent;
use crate::latency::LatencyTracker;
use crate::observer::Observer;

/// One periodic aggregate: cumulative counters as of `at_us`, plus the
/// counter deltas since the previous snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservabilitySnapshot {
    /// Event-stream time this snapshot was cut at, µs.
    pub at_us: u64,
    /// Cumulative counters since the entity started.
    pub counters: Counters,
    /// Deliveries since the previous snapshot (the rate signal the §5
    /// throughput plots need).
    pub delivered_delta: u64,
    /// Wire transmissions since the previous snapshot.
    pub sent_delta: u64,
}

/// An [`Observer`] that maintains counters and latency histograms and
/// cuts an [`ObservabilitySnapshot`] every `period_us` of event time.
///
/// Periods are measured on the *event* timestamps, not a wall clock, so
/// the aggregator works identically under the deterministic simulator and
/// the real-time transport.
#[derive(Debug, Clone)]
pub struct SnapshotAggregator {
    period_us: u64,
    fold: CounterFold,
    latency: LatencyTracker,
    next_cut_us: u64,
    last: Counters,
    snapshots: Vec<ObservabilitySnapshot>,
}

impl SnapshotAggregator {
    /// Cuts a snapshot every `period_us` (> 0) of event time.
    pub fn new(period_us: u64) -> Self {
        assert!(period_us > 0, "snapshot period must be positive");
        SnapshotAggregator {
            period_us,
            fold: CounterFold::new(),
            latency: LatencyTracker::new(),
            next_cut_us: period_us,
            last: Counters::default(),
            snapshots: Vec::new(),
        }
    }

    /// Snapshots cut so far, oldest first.
    pub fn snapshots(&self) -> &[ObservabilitySnapshot] {
        &self.snapshots
    }

    /// Cumulative counters as of the last event.
    pub fn counters(&self) -> Counters {
        self.fold.counters()
    }

    /// The latency histograms accumulated so far.
    pub fn latency(&self) -> &LatencyTracker {
        &self.latency
    }

    /// Cuts a final snapshot at `now_us` regardless of the period (call
    /// at shutdown so the tail interval isn't lost).
    pub fn finish(&mut self, now_us: u64) -> ObservabilitySnapshot {
        let snap = self.cut(now_us);
        self.snapshots.push(snap);
        snap
    }

    fn cut(&mut self, at_us: u64) -> ObservabilitySnapshot {
        let counters = self.fold.counters();
        let snap = ObservabilitySnapshot {
            at_us,
            counters,
            delivered_delta: counters.delivered - self.last.delivered,
            sent_delta: counters.pdus_sent() - self.last.pdus_sent(),
        };
        self.last = counters;
        snap
    }
}

impl Observer for SnapshotAggregator {
    fn on_event(&mut self, event: ProtocolEvent) {
        let now = event.now_us();
        while now >= self.next_cut_us {
            let at = self.next_cut_us;
            let snap = self.cut(at);
            self.snapshots.push(snap);
            self.next_cut_us += self.period_us;
        }
        self.fold.on_event(event);
        self.latency.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_order::{EntityId, Seq};

    fn delivered(t: u64) -> ProtocolEvent {
        ProtocolEvent::Delivered {
            src: EntityId::new(0),
            seq: Seq::new(1),
            now_us: t,
        }
    }

    #[test]
    fn cuts_on_period_boundaries() {
        let mut agg = SnapshotAggregator::new(1000);
        agg.on_event(delivered(100));
        agg.on_event(delivered(900));
        agg.on_event(delivered(1500)); // crosses the 1000 boundary
        assert_eq!(agg.snapshots().len(), 1);
        let s = agg.snapshots()[0];
        assert_eq!(s.at_us, 1000);
        assert_eq!(s.delivered_delta, 2);
        assert_eq!(s.counters.delivered, 2);
    }

    #[test]
    fn idle_periods_produce_empty_snapshots() {
        let mut agg = SnapshotAggregator::new(100);
        agg.on_event(delivered(50));
        agg.on_event(delivered(350)); // skips two whole periods
        let deltas: Vec<u64> = agg.snapshots().iter().map(|s| s.delivered_delta).collect();
        assert_eq!(deltas, vec![1, 0, 0]);
    }

    #[test]
    fn finish_cuts_the_tail() {
        let mut agg = SnapshotAggregator::new(1000);
        agg.on_event(delivered(10));
        let tail = agg.finish(500);
        assert_eq!(tail.at_us, 500);
        assert_eq!(tail.delivered_delta, 1);
        assert_eq!(agg.snapshots().len(), 1);
    }
}
