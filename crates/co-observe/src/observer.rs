//! The observer trait and its basic implementations.

use crate::event::ProtocolEvent;

/// A sink for [`ProtocolEvent`]s, plugged into an entity at construction.
///
/// Implementations must be cheap: `on_event` is called from the engine's
/// hot path. The default [`NoopObserver`] is guaranteed zero-cost — its
/// empty inline body lets the compiler eliminate event construction
/// entirely (`co-bench`'s guard bench enforces this).
pub trait Observer {
    /// Called at the instant the transition happens, before the
    /// corresponding action (if any) is pushed to the driver.
    fn on_event(&mut self, event: ProtocolEvent);
}

/// The default observer: ignores every event, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn on_event(&mut self, _event: ProtocolEvent) {}
}

/// Forwarding: a mutable reference to an observer is an observer.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        (**self).on_event(event);
    }
}

/// An optional observer: `None` behaves like [`NoopObserver`].
impl<O: Observer> Observer for Option<O> {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        if let Some(o) = self {
            o.on_event(event);
        }
    }
}

/// Boxed dynamic dispatch, for drivers that choose the observer at run
/// time (e.g. `co-cli` behind a flag).
impl Observer for Box<dyn Observer> {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        (**self).on_event(event);
    }
}

/// Fans every event out to two observers, in order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

/// Records every event in order — the in-memory trace backing the JSONL
/// exporter and the trace-based test assertions.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<ProtocolEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the log, returning the events.
    pub fn into_events(self) -> Vec<ProtocolEvent> {
        self.events
    }
}

impl Observer for EventLog {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        self.events.push(event);
    }
}

/// Folds the event stream into a single order-sensitive 64-bit digest
/// (FNV-1a over each event's stable word encoding). Two runs produce the
/// same digest iff they emitted the same events in the same order — the
/// cheap way to assert schedule determinism without storing full traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestObserver {
    hash: u64,
    count: u64,
}

impl Default for DigestObserver {
    fn default() -> Self {
        DigestObserver {
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            count: 0,
        }
    }
}

impl DigestObserver {
    /// A fresh digest.
    pub fn new() -> Self {
        DigestObserver::default()
    }

    /// The digest over everything observed so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// How many events were folded in.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Observer for DigestObserver {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.hash;
        for word in event.encode_words() {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        }
        self.hash = h;
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_order::{EntityId, Seq};

    fn sample(now_us: u64) -> ProtocolEvent {
        ProtocolEvent::Delivered {
            src: EntityId::new(0),
            seq: Seq::new(1),
            now_us,
        }
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        log.on_event(sample(1));
        log.on_event(sample(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].now_us(), 1);
        assert_eq!(log.events()[1].now_us(), 2);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = DigestObserver::new();
        let mut b = DigestObserver::new();
        a.on_event(sample(1));
        a.on_event(sample(2));
        b.on_event(sample(2));
        b.on_event(sample(1));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = DigestObserver::new();
        let mut b = DigestObserver::new();
        for t in 0..100 {
            a.on_event(sample(t));
            b.on_event(sample(t));
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = Tee(EventLog::new(), DigestObserver::new());
        tee.on_event(sample(5));
        assert_eq!(tee.0.len(), 1);
        assert_eq!(tee.1.count(), 1);
    }

    #[test]
    fn option_none_is_noop() {
        let mut o: Option<EventLog> = None;
        o.on_event(sample(1));
        let mut some = Some(EventLog::new());
        some.on_event(sample(1));
        assert_eq!(some.unwrap().len(), 1);
    }
}
