//! Fixed-bucket latency histograms.

/// Number of power-of-two buckets: values up to `2^39 µs` (~6.4 days)
/// resolve to a bucket of their own; anything larger saturates into the
/// last bucket.
pub const BUCKETS: usize = 40;

/// A fixed-size power-of-two histogram of microsecond latencies.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Recording is allocation-free and O(1) (a
/// `leading_zeros` and an array increment), so histograms can sit on the
/// protocol's receive path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(value_us: u64) -> usize {
    if value_us == 0 {
        0
    } else {
        ((64 - value_us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&mut self, value_us: u64) {
        self.buckets[bucket_index(value_us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_us);
        self.min = self.min.min(value_us);
        self.max = self.max.max(value_us);
    }

    /// Merges another histogram into this one. Equivalent to having
    /// recorded the union of both sample sets: bucket counts add, and the
    /// summary statistics (count, sum, min, max) combine losslessly —
    /// quantile queries on the merge answer exactly as they would on the
    /// folded union.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, µs (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    /// Mean sample, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest recorded sample, µs (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, µs.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// An upper bound on quantile `q` (in `[0, 1]`): the inclusive upper
    /// edge of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Resolution is the bucket width (a factor of 2).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Inclusive upper edge of bucket `i` (`0` for the zero bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// `(upper_bound_us, cumulative_count)` per non-empty prefix bucket —
    /// the shape Prometheus' `_bucket{le=..}` series wants.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut acc = 0u64;
        self.buckets.iter().enumerate().map(move |(i, &n)| {
            acc += n;
            (Histogram::bucket_upper_bound(i), acc)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 106);
        assert_eq!(h.mean_us(), 26);
        assert_eq!(h.min_us(), 1);
        assert_eq!(h.max_us(), 100);
    }

    #[test]
    fn quantiles_bound_from_above() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 of 1..=100 is 50; its bucket [32,64) upper edge is 63.
        let p50 = h.quantile_us(0.5);
        assert!((50..=63).contains(&p50), "p50 bound {p50}");
        assert_eq!(h.quantile_us(1.0), 100);
        assert_eq!(Histogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn merge_equals_folding_the_union() {
        let (a_samples, b_samples) = ([1u64, 7, 300], [0u64, 7, 9_000_000]);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for v in a_samples {
            a.record(v);
            union.record(v);
        }
        for v in b_samples {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h;
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both, Histogram::new());
        assert_eq!(both.min_us(), 0);
    }

    #[test]
    fn cumulative_buckets_end_at_count() {
        let mut h = Histogram::new();
        for v in [0, 5, 5000, 70000] {
            h.record(v);
        }
        let last = h.cumulative_buckets().last().unwrap();
        assert_eq!(last.1, 4);
        assert_eq!(last.0, u64::MAX);
    }
}
