//! Observability layer for the CO protocol: a structured
//! [`ProtocolEvent`] stream emitted by the engine through a pluggable
//! [`Observer`], with fold-based [`Counters`], fixed-bucket latency
//! [`Histogram`]s, a periodic [`SnapshotAggregator`], and two exporters
//! (JSONL event traces in [`jsonl`], Prometheus text format in [`prom`]).
//!
//! # Design
//!
//! The engine (`co-protocol`) is generic over an observer it calls at
//! every instrumented transition. Observers compose:
//!
//! * [`NoopObserver`] (the default) — compiles to nothing; the
//!   instrumented engine is bit-identical in cost to the uninstrumented
//!   one (`co-bench`'s guard bench enforces the claim).
//! * [`EventLog`] — records the stream for trace assertions and the JSONL
//!   exporter.
//! * [`DigestObserver`] — folds the stream into an order-sensitive 64-bit
//!   digest, the cheap determinism check used by `co-check`.
//! * [`CounterFold`] — reconstructs the engine's counters from events
//!   alone (property-tested to match `Metrics::snapshot()` exactly).
//! * [`LatencyTracker`] — per-stage latency histograms (submit→accept,
//!   accept→pre-ack, accept→deliver, RET round-trip).
//! * [`Tee`] / `Option<O>` / `Box<dyn Observer>` — composition,
//!   optionality, and runtime selection.
//!
//! Events carry the entity-local monotonic timestamp the engine was
//! driven with; drivers that share an epoch across nodes (`co-transport`)
//! can join streams cross-node to reproduce the paper's §5 Tap/Tco
//! measurements from a trace file alone — see EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod flow;
mod histogram;
pub mod jsonl;
mod latency;
mod observer;
pub mod prom;
mod recorder;
mod snapshot;

pub use counters::{CounterFold, Counters};
pub use event::ProtocolEvent;
pub use flow::FlowGauge;
pub use histogram::{Histogram, BUCKETS};
pub use jsonl::TraceLine;
pub use latency::LatencyTracker;
pub use observer::{DigestObserver, EventLog, NoopObserver, Observer, Tee};
pub use prom::SeriesLabels;
pub use recorder::{FlightRecorder, RecorderDump, DEFAULT_RECORDER_DEPTH};
pub use snapshot::{ObservabilitySnapshot, SnapshotAggregator};
