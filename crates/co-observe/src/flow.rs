//! Flow-condition gauge fold: the window state as last observed.
//!
//! [`ProtocolEvent::FlowBlocked`] is a gauge event — it carries the send
//! window's state (`outstanding`, effective `limit`) at the moment the §4.2
//! flow condition blocked a submit. This fold keeps the latest snapshot
//! plus a cumulative blocked count, in the shape the Prometheus exporter
//! ([`crate::prom::render_flow`]) wants.

use crate::event::ProtocolEvent;
use crate::observer::Observer;

/// Folds flow events into gauge values.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowGauge {
    blocked_events: u64,
    last_outstanding: u64,
    last_limit: u64,
    blocked_now: bool,
}

impl FlowGauge {
    /// A zeroed gauge (flow open, nothing observed).
    pub fn new() -> Self {
        FlowGauge::default()
    }

    /// Cumulative number of blocked submits observed.
    pub fn blocked_events(&self) -> u64 {
        self.blocked_events
    }

    /// `outstanding` from the most recent [`ProtocolEvent::FlowBlocked`]
    /// (own PDUs sent but not yet known accepted everywhere).
    pub fn last_outstanding(&self) -> u64 {
        self.last_outstanding
    }

    /// `limit` from the most recent [`ProtocolEvent::FlowBlocked`]; `0`
    /// means the buffer share was starved.
    pub fn last_limit(&self) -> u64 {
        self.last_limit
    }

    /// Whether the flow condition is currently closed (a block was
    /// observed and no re-open since).
    pub fn blocked_now(&self) -> bool {
        self.blocked_now
    }
}

impl Observer for FlowGauge {
    fn on_event(&mut self, event: ProtocolEvent) {
        match event {
            ProtocolEvent::FlowBlocked {
                outstanding, limit, ..
            } => {
                self.blocked_events += 1;
                self.last_outstanding = outstanding;
                self.last_limit = limit;
                self.blocked_now = true;
            }
            ProtocolEvent::FlowOpened { .. } => self.blocked_now = false,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_block_and_reopen() {
        let mut g = FlowGauge::new();
        assert!(!g.blocked_now());
        g.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 8,
            limit: 8,
            now_us: 1,
        });
        g.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 9,
            limit: 4,
            now_us: 2,
        });
        assert_eq!(g.blocked_events(), 2);
        assert_eq!(g.last_outstanding(), 9);
        assert_eq!(g.last_limit(), 4);
        assert!(g.blocked_now());
        g.on_event(ProtocolEvent::FlowOpened { now_us: 3 });
        assert!(!g.blocked_now());
        assert_eq!(g.blocked_events(), 2, "count is cumulative");
    }
}
