//! JSONL trace exporter, parser, and offline Tco/Tap analysis.
//!
//! One JSON object per line, flat, hand-rolled (the workspace carries no
//! JSON dependency). Two record kinds share the stream:
//!
//! * protocol events, tagged by [`ProtocolEvent::kind`], with the fields
//!   of the variant (`{"node":0,"kind":"accepted","t_us":812,"src":1,
//!   "seq":5,"from_reorder":false}`);
//! * host-measured protocol-processing samples
//!   (`{"node":0,"kind":"host_tco","t_us":812,"dur_us":14}`) — Tco is a
//!   *host* measurement (CPU time spent inside the engine) and cannot be
//!   reconstructed from event timestamps alone, so the driver records it
//!   as its own line.
//!
//! When every node derives its event timestamps from one shared epoch (as
//! `co-transport` does), [`tap_samples_us`] joins `data_sent` lines
//! against remote `delivered` lines to reproduce the paper's Tap
//! (application-to-application delay, §5 Figure 8); [`tco_samples_us`]
//! collects the Tco samples. EXPERIMENTS.md shows the full recipe.

use std::collections::HashMap;

use causal_order::{EntityId, Seq};

use crate::event::ProtocolEvent;

/// One line of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLine {
    /// A protocol event emitted by `node`'s entity.
    Event {
        /// The emitting node (entity index).
        node: u32,
        /// The event.
        event: ProtocolEvent,
    },
    /// Host-measured time spent processing one input inside the engine.
    HostTco {
        /// The measuring node.
        node: u32,
        /// Shared-epoch time of the measurement, µs.
        at_us: u64,
        /// Engine processing duration, µs.
        dur_us: u64,
    },
}

fn push_field(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Encodes one record as a JSON line (no trailing newline).
pub fn encode_line(line: &TraceLine) -> String {
    let mut out = String::with_capacity(96);
    match *line {
        TraceLine::HostTco {
            node,
            at_us,
            dur_us,
        } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"kind\":\"host_tco\",\"t_us\":{at_us}"
            ));
            push_field(&mut out, "dur_us", dur_us);
        }
        TraceLine::Event { node, event } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"kind\":\"{}\",\"t_us\":{}",
                event.kind(),
                event.now_us()
            ));
            let id = |e: EntityId| e.index() as u64;
            match event {
                ProtocolEvent::Submitted { .. }
                | ProtocolEvent::FlowClosed { .. }
                | ProtocolEvent::FlowOpened { .. }
                | ProtocolEvent::AckOnlySent { .. } => {}
                ProtocolEvent::DataSent { src, seq, .. }
                | ProtocolEvent::PreAcked { src, seq, .. }
                | ProtocolEvent::Delivered { src, seq, .. }
                | ProtocolEvent::Duplicate { src, seq, .. }
                | ProtocolEvent::ReorderEnter { src, seq, .. }
                | ProtocolEvent::ReorderExit { src, seq, .. }
                | ProtocolEvent::OutOfOrderDiscarded { src, seq, .. } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                }
                ProtocolEvent::Accepted {
                    src,
                    seq,
                    from_reorder,
                    ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                    out.push_str(",\"from_reorder\":");
                    out.push_str(if from_reorder { "true" } else { "false" });
                }
                ProtocolEvent::CpiInserted {
                    src, seq, position, ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                    push_field(&mut out, "pos", position);
                }
                ProtocolEvent::F1Detected {
                    src, expected, got, ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "expected", expected.get());
                    push_field(&mut out, "got", got.get());
                }
                ProtocolEvent::F2Detected { src, confirmed, .. } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "confirmed", confirmed.get());
                }
                ProtocolEvent::RetSent { src, lseq, .. }
                | ProtocolEvent::RetSuppressed { src, lseq, .. } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "lseq", lseq.get());
                }
                ProtocolEvent::RetServed { to, seq, .. } => {
                    push_field(&mut out, "to", id(to));
                    push_field(&mut out, "seq", seq.get());
                }
                ProtocolEvent::RetUnservable { amount, .. } => {
                    push_field(&mut out, "amount", amount);
                }
            }
        }
    }
    out.push('}');
    out
}

/// A parsed flat-JSON field value.
enum FieldValue<'a> {
    Num(u64),
    Bool(bool),
    Str(&'a str),
}

/// Parses one flat JSON object (string/unsigned-number/bool values only)
/// into its fields. Returns `None` on malformed input.
fn parse_flat<'a>(line: &'a str) -> Option<Vec<(&'a str, FieldValue<'a>)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let key = &rest[..key_end];
        rest = rest[key_end + 1..]
            .trim_start()
            .strip_prefix(':')?
            .trim_start();
        let (value, after) = if let Some(tail) = rest.strip_prefix('"') {
            let end = tail.find('"')?;
            (FieldValue::Str(&tail[..end]), &tail[end + 1..])
        } else if let Some(tail) = rest.strip_prefix("true") {
            (FieldValue::Bool(true), tail)
        } else if let Some(tail) = rest.strip_prefix("false") {
            (FieldValue::Bool(false), tail)
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return None;
            }
            (FieldValue::Num(rest[..end].parse().ok()?), &rest[end..])
        };
        fields.push((key, value));
        rest = after.trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(fields)
}

/// Parses one trace line. Returns `None` for malformed lines or unknown
/// kinds (forward compatibility: newer writers may add kinds).
pub fn parse_line(line: &str) -> Option<TraceLine> {
    let fields = parse_flat(line)?;
    let num = |key: &str| {
        fields.iter().find_map(|(k, v)| match v {
            FieldValue::Num(n) if *k == key => Some(*n),
            _ => None,
        })
    };
    let boolean = |key: &str| {
        fields.iter().find_map(|(k, v)| match v {
            FieldValue::Bool(b) if *k == key => Some(*b),
            _ => None,
        })
    };
    let kind = fields.iter().find_map(|(k, v)| match v {
        FieldValue::Str(s) if *k == "kind" => Some(*s),
        _ => None,
    })?;
    let node = u32::try_from(num("node")?).ok()?;
    let t = num("t_us")?;
    let src = || num("src").map(|s| EntityId::new(u32::try_from(s).ok().unwrap_or(u32::MAX)));
    let seq = || num("seq").map(Seq::new);
    let event = match kind {
        "host_tco" => {
            return Some(TraceLine::HostTco {
                node,
                at_us: t,
                dur_us: num("dur_us")?,
            })
        }
        "submitted" => ProtocolEvent::Submitted { now_us: t },
        "flow_closed" => ProtocolEvent::FlowClosed { now_us: t },
        "flow_opened" => ProtocolEvent::FlowOpened { now_us: t },
        "ack_only_sent" => ProtocolEvent::AckOnlySent { now_us: t },
        "data_sent" => ProtocolEvent::DataSent {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "accepted" => ProtocolEvent::Accepted {
            src: src()?,
            seq: seq()?,
            from_reorder: boolean("from_reorder")?,
            now_us: t,
        },
        "pre_acked" => ProtocolEvent::PreAcked {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "cpi_inserted" => ProtocolEvent::CpiInserted {
            src: src()?,
            seq: seq()?,
            position: num("pos")?,
            now_us: t,
        },
        "delivered" => ProtocolEvent::Delivered {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "f1_detected" => ProtocolEvent::F1Detected {
            src: src()?,
            expected: Seq::new(num("expected")?),
            got: Seq::new(num("got")?),
            now_us: t,
        },
        "f2_detected" => ProtocolEvent::F2Detected {
            src: src()?,
            confirmed: Seq::new(num("confirmed")?),
            now_us: t,
        },
        "duplicate" => ProtocolEvent::Duplicate {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "reorder_enter" => ProtocolEvent::ReorderEnter {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "reorder_exit" => ProtocolEvent::ReorderExit {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "ooo_discarded" => ProtocolEvent::OutOfOrderDiscarded {
            src: src()?,
            seq: seq()?,
            now_us: t,
        },
        "ret_sent" => ProtocolEvent::RetSent {
            src: src()?,
            lseq: Seq::new(num("lseq")?),
            now_us: t,
        },
        "ret_suppressed" => ProtocolEvent::RetSuppressed {
            src: src()?,
            lseq: Seq::new(num("lseq")?),
            now_us: t,
        },
        "ret_served" => ProtocolEvent::RetServed {
            to: EntityId::new(u32::try_from(num("to")?).ok()?),
            seq: seq()?,
            now_us: t,
        },
        "ret_unservable" => ProtocolEvent::RetUnservable {
            amount: num("amount")?,
            now_us: t,
        },
        _ => return None,
    };
    Some(TraceLine::Event { node, event })
}

/// Parses a whole trace, skipping malformed/unknown lines.
pub fn parse_trace(text: &str) -> Vec<TraceLine> {
    text.lines().filter_map(parse_line).collect()
}

/// Application-to-application delays (the paper's Tap, §5): for every
/// `data_sent` on the source node, the delta to each `delivered` of that
/// `(src, seq)` on a *different* node. Requires all nodes to share a
/// timestamp epoch.
pub fn tap_samples_us(lines: &[TraceLine]) -> Vec<u64> {
    let mut sent: HashMap<(u64, u64), u64> = HashMap::new();
    for line in lines {
        if let TraceLine::Event {
            event: ProtocolEvent::DataSent { src, seq, now_us },
            ..
        } = line
        {
            sent.entry((src.index() as u64, seq.get()))
                .or_insert(*now_us);
        }
    }
    let mut samples = Vec::new();
    for line in lines {
        if let TraceLine::Event {
            node,
            event: ProtocolEvent::Delivered { src, seq, now_us },
        } = line
        {
            if u64::from(*node) == src.index() as u64 {
                continue; // self-delivery is not app-to-app
            }
            if let Some(&at) = sent.get(&(src.index() as u64, seq.get())) {
                samples.push(now_us.saturating_sub(at));
            }
        }
    }
    samples
}

/// Host-measured protocol-processing times (the paper's Tco, §5).
pub fn tco_samples_us(lines: &[TraceLine]) -> Vec<u64> {
    lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::HostTco { dur_us, .. } => Some(*dur_us),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn round_trips_every_kind() {
        let lines = [
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::Submitted { now_us: 1 },
            },
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::DataSent {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 2,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::Accepted {
                    src: id(0),
                    seq: Seq::new(1),
                    from_reorder: true,
                    now_us: 3,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::CpiInserted {
                    src: id(0),
                    seq: Seq::new(1),
                    position: 4,
                    now_us: 5,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::F1Detected {
                    src: id(0),
                    expected: Seq::new(2),
                    got: Seq::new(4),
                    now_us: 6,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::RetServed {
                    to: id(2),
                    seq: Seq::new(9),
                    now_us: 7,
                },
            },
            TraceLine::HostTco {
                node: 2,
                at_us: 8,
                dur_us: 14,
            },
        ];
        for line in &lines {
            let text = encode_line(line);
            assert_eq!(parse_line(&text), Some(*line), "round trip of {text}");
        }
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let trace = "garbage\n{\"node\":0,\"kind\":\"submitted\",\"t_us\":5}\n{\"kind\":9}";
        let parsed = parse_trace(trace);
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn tap_joins_across_nodes() {
        let lines = vec![
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::DataSent {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 100,
                },
            },
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 900, // self-delivery: excluded
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 350,
                },
            },
            TraceLine::Event {
                node: 2,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 400,
                },
            },
        ];
        let mut tap = tap_samples_us(&lines);
        tap.sort_unstable();
        assert_eq!(tap, vec![250, 300]);
    }

    #[test]
    fn tco_collects_host_samples() {
        let lines = vec![
            TraceLine::HostTco {
                node: 0,
                at_us: 1,
                dur_us: 10,
            },
            TraceLine::HostTco {
                node: 1,
                at_us: 2,
                dur_us: 20,
            },
        ];
        assert_eq!(tco_samples_us(&lines), vec![10, 20]);
    }
}
