//! JSONL trace exporter, parser, and offline Tco/Tap analysis.
//!
//! One JSON object per line, flat, hand-rolled (the workspace carries no
//! JSON dependency). Two record kinds share the stream:
//!
//! * protocol events, tagged by [`ProtocolEvent::kind`], with the fields
//!   of the variant (`{"node":0,"kind":"accepted","t_us":812,"src":1,
//!   "seq":5,"from_reorder":false}`);
//! * host-measured protocol-processing samples
//!   (`{"node":0,"kind":"host_tco","t_us":812,"dur_us":14}`) — Tco is a
//!   *host* measurement (CPU time spent inside the engine) and cannot be
//!   reconstructed from event timestamps alone, so the driver records it
//!   as its own line.
//!
//! When every node derives its event timestamps from one shared epoch (as
//! `co-transport` does), [`tap_samples_us`] joins `data_sent` lines
//! against remote `delivered` lines to reproduce the paper's Tap
//! (application-to-application delay, §5 Figure 8); [`tco_samples_us`]
//! collects the Tco samples. EXPERIMENTS.md shows the full recipe.

use std::collections::HashMap;

use causal_order::{EntityId, Seq};

use crate::event::ProtocolEvent;

/// One line of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLine {
    /// A protocol event emitted by `node`'s entity.
    Event {
        /// The emitting node (entity index).
        node: u32,
        /// The event.
        event: ProtocolEvent,
    },
    /// Host-measured time spent processing one input inside the engine.
    HostTco {
        /// The measuring node.
        node: u32,
        /// Shared-epoch time of the measurement, µs.
        at_us: u64,
        /// Engine processing duration, µs.
        dur_us: u64,
    },
}

fn push_field(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Encodes one record as a JSON line (no trailing newline).
pub fn encode_line(line: &TraceLine) -> String {
    let mut out = String::with_capacity(96);
    match *line {
        TraceLine::HostTco {
            node,
            at_us,
            dur_us,
        } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"kind\":\"host_tco\",\"t_us\":{at_us}"
            ));
            push_field(&mut out, "dur_us", dur_us);
        }
        TraceLine::Event { node, event } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"kind\":\"{}\",\"t_us\":{}",
                event.kind(),
                event.now_us()
            ));
            let id = |e: EntityId| e.index() as u64;
            match event {
                ProtocolEvent::Submitted { .. }
                | ProtocolEvent::FlowClosed { .. }
                | ProtocolEvent::FlowOpened { .. }
                | ProtocolEvent::AckOnlySent { .. } => {}
                ProtocolEvent::DataSent { src, seq, .. }
                | ProtocolEvent::PreAcked { src, seq, .. }
                | ProtocolEvent::Delivered { src, seq, .. }
                | ProtocolEvent::Duplicate { src, seq, .. }
                | ProtocolEvent::ReorderEnter { src, seq, .. }
                | ProtocolEvent::ReorderExit { src, seq, .. }
                | ProtocolEvent::OutOfOrderDiscarded { src, seq, .. } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                }
                ProtocolEvent::Accepted {
                    src,
                    seq,
                    from_reorder,
                    ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                    out.push_str(",\"from_reorder\":");
                    out.push_str(if from_reorder { "true" } else { "false" });
                }
                ProtocolEvent::CpiInserted {
                    src, seq, position, ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "seq", seq.get());
                    push_field(&mut out, "pos", position);
                }
                ProtocolEvent::F1Detected {
                    src, expected, got, ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "expected", expected.get());
                    push_field(&mut out, "got", got.get());
                }
                ProtocolEvent::F2Detected {
                    src,
                    confirmed,
                    via,
                    ..
                } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "confirmed", confirmed.get());
                    push_field(&mut out, "via", id(via));
                }
                ProtocolEvent::FlowBlocked {
                    outstanding, limit, ..
                } => {
                    push_field(&mut out, "outstanding", outstanding);
                    push_field(&mut out, "limit", limit);
                }
                ProtocolEvent::RetSent { src, lseq, .. }
                | ProtocolEvent::RetSuppressed { src, lseq, .. } => {
                    push_field(&mut out, "src", id(src));
                    push_field(&mut out, "lseq", lseq.get());
                }
                ProtocolEvent::RetServed { to, seq, .. } => {
                    push_field(&mut out, "to", id(to));
                    push_field(&mut out, "seq", seq.get());
                }
                ProtocolEvent::RetUnservable { amount, .. } => {
                    push_field(&mut out, "amount", amount);
                }
            }
        }
    }
    out.push('}');
    out
}

/// A parsed flat-JSON field value.
enum FieldValue<'a> {
    Num(u64),
    Bool(bool),
    Str(&'a str),
}

/// Parses one flat JSON object (string/unsigned-number/bool values only)
/// into its fields. Returns `None` on malformed input.
fn parse_flat<'a>(line: &'a str) -> Option<Vec<(&'a str, FieldValue<'a>)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let key = &rest[..key_end];
        rest = rest[key_end + 1..]
            .trim_start()
            .strip_prefix(':')?
            .trim_start();
        let (value, after) = if let Some(tail) = rest.strip_prefix('"') {
            let end = tail.find('"')?;
            (FieldValue::Str(&tail[..end]), &tail[end + 1..])
        } else if let Some(tail) = rest.strip_prefix("true") {
            (FieldValue::Bool(true), tail)
        } else if let Some(tail) = rest.strip_prefix("false") {
            (FieldValue::Bool(false), tail)
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return None;
            }
            (FieldValue::Num(rest[..end].parse().ok()?), &rest[end..])
        };
        fields.push((key, value));
        rest = after.trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(fields)
}

/// Why one trace line failed to parse strictly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineError {
    /// Not a flat JSON object: bad syntax, a truncated line, or a nested
    /// value the flat format does not allow.
    Malformed,
    /// A required field is absent (or present with the wrong type).
    MissingField(&'static str),
    /// The `kind` tag names no record this decoder knows.
    UnknownKind(String),
    /// An entity-id field exceeds the 32-bit id space.
    EntityOutOfRange {
        /// The offending field key.
        field: &'static str,
        /// The out-of-range value as written.
        value: u64,
    },
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Malformed => write!(f, "malformed flat-JSON object"),
            LineError::MissingField(key) => write!(f, "missing field `{key}`"),
            LineError::UnknownKind(kind) => write!(f, "unknown event kind `{kind}`"),
            LineError::EntityOutOfRange { field, value } => {
                write!(f, "entity id `{field}`={value} exceeds the u32 id space")
            }
        }
    }
}

impl std::error::Error for LineError {}

/// A strict-parse failure, locating the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number within the trace text.
    pub line: usize,
    /// What was wrong with it.
    pub error: LineError,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for TraceError {}

/// Parses one trace line, reporting exactly why it failed. Unknown kinds
/// are an error here — use [`parse_line`]/[`parse_trace`] when forward
/// compatibility with newer writers matters more than diagnostics.
pub fn parse_line_strict(line: &str) -> Result<TraceLine, LineError> {
    let fields = parse_flat(line).ok_or(LineError::Malformed)?;
    let num = |key: &'static str| {
        fields
            .iter()
            .find_map(|(k, v)| match v {
                FieldValue::Num(n) if *k == key => Some(*n),
                _ => None,
            })
            .ok_or(LineError::MissingField(key))
    };
    let boolean = |key: &'static str| {
        fields
            .iter()
            .find_map(|(k, v)| match v {
                FieldValue::Bool(b) if *k == key => Some(*b),
                _ => None,
            })
            .ok_or(LineError::MissingField(key))
    };
    let ent = |key: &'static str| {
        let raw = num(key)?;
        u32::try_from(raw)
            .map(EntityId::new)
            .map_err(|_| LineError::EntityOutOfRange {
                field: key,
                value: raw,
            })
    };
    let kind = fields
        .iter()
        .find_map(|(k, v)| match v {
            FieldValue::Str(s) if *k == "kind" => Some(*s),
            _ => None,
        })
        .ok_or(LineError::MissingField("kind"))?;
    let node = {
        let raw = num("node")?;
        u32::try_from(raw).map_err(|_| LineError::EntityOutOfRange {
            field: "node",
            value: raw,
        })?
    };
    let t = num("t_us")?;
    let seq = || num("seq").map(Seq::new);
    let event = match kind {
        "host_tco" => {
            return Ok(TraceLine::HostTco {
                node,
                at_us: t,
                dur_us: num("dur_us")?,
            })
        }
        "submitted" => ProtocolEvent::Submitted { now_us: t },
        "flow_closed" => ProtocolEvent::FlowClosed { now_us: t },
        "flow_opened" => ProtocolEvent::FlowOpened { now_us: t },
        "flow_blocked" => ProtocolEvent::FlowBlocked {
            outstanding: num("outstanding")?,
            limit: num("limit")?,
            now_us: t,
        },
        "ack_only_sent" => ProtocolEvent::AckOnlySent { now_us: t },
        "data_sent" => ProtocolEvent::DataSent {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "accepted" => ProtocolEvent::Accepted {
            src: ent("src")?,
            seq: seq()?,
            from_reorder: boolean("from_reorder")?,
            now_us: t,
        },
        "pre_acked" => ProtocolEvent::PreAcked {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "cpi_inserted" => ProtocolEvent::CpiInserted {
            src: ent("src")?,
            seq: seq()?,
            position: num("pos")?,
            now_us: t,
        },
        "delivered" => ProtocolEvent::Delivered {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "f1_detected" => ProtocolEvent::F1Detected {
            src: ent("src")?,
            expected: Seq::new(num("expected")?),
            got: Seq::new(num("got")?),
            now_us: t,
        },
        "f2_detected" => ProtocolEvent::F2Detected {
            src: ent("src")?,
            confirmed: Seq::new(num("confirmed")?),
            via: ent("via")?,
            now_us: t,
        },
        "duplicate" => ProtocolEvent::Duplicate {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "reorder_enter" => ProtocolEvent::ReorderEnter {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "reorder_exit" => ProtocolEvent::ReorderExit {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "ooo_discarded" => ProtocolEvent::OutOfOrderDiscarded {
            src: ent("src")?,
            seq: seq()?,
            now_us: t,
        },
        "ret_sent" => ProtocolEvent::RetSent {
            src: ent("src")?,
            lseq: Seq::new(num("lseq")?),
            now_us: t,
        },
        "ret_suppressed" => ProtocolEvent::RetSuppressed {
            src: ent("src")?,
            lseq: Seq::new(num("lseq")?),
            now_us: t,
        },
        "ret_served" => ProtocolEvent::RetServed {
            to: ent("to")?,
            seq: seq()?,
            now_us: t,
        },
        "ret_unservable" => ProtocolEvent::RetUnservable {
            amount: num("amount")?,
            now_us: t,
        },
        other => return Err(LineError::UnknownKind(other.to_string())),
    };
    Ok(TraceLine::Event { node, event })
}

/// Parses one trace line. Returns `None` for malformed lines or unknown
/// kinds (forward compatibility: newer writers may add kinds).
pub fn parse_line(line: &str) -> Option<TraceLine> {
    parse_line_strict(line).ok()
}

/// Parses a whole trace, skipping malformed/unknown lines.
pub fn parse_trace(text: &str) -> Vec<TraceLine> {
    text.lines().filter_map(parse_line).collect()
}

/// Parses a whole trace strictly: the first bad line aborts with a
/// [`TraceError`] naming the 1-based line number. Blank lines are
/// allowed (trailing newlines are common in JSONL files).
pub fn parse_trace_strict(text: &str) -> Result<Vec<TraceLine>, TraceError> {
    let mut lines = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_line_strict(line).map_err(|error| TraceError {
            line: idx + 1,
            error,
        })?;
        lines.push(parsed);
    }
    Ok(lines)
}

/// Application-to-application delays (the paper's Tap, §5): for every
/// `data_sent` on the source node, the delta to each `delivered` of that
/// `(src, seq)` on a *different* node. Requires all nodes to share a
/// timestamp epoch.
pub fn tap_samples_us(lines: &[TraceLine]) -> Vec<u64> {
    let mut sent: HashMap<(u64, u64), u64> = HashMap::new();
    for line in lines {
        if let TraceLine::Event {
            event: ProtocolEvent::DataSent { src, seq, now_us },
            ..
        } = line
        {
            sent.entry((src.index() as u64, seq.get()))
                .or_insert(*now_us);
        }
    }
    let mut samples = Vec::new();
    for line in lines {
        if let TraceLine::Event {
            node,
            event: ProtocolEvent::Delivered { src, seq, now_us },
        } = line
        {
            if u64::from(*node) == src.index() as u64 {
                continue; // self-delivery is not app-to-app
            }
            if let Some(&at) = sent.get(&(src.index() as u64, seq.get())) {
                samples.push(now_us.saturating_sub(at));
            }
        }
    }
    samples
}

/// Host-measured protocol-processing times (the paper's Tco, §5).
pub fn tco_samples_us(lines: &[TraceLine]) -> Vec<u64> {
    lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::HostTco { dur_us, .. } => Some(*dur_us),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn round_trips_every_kind() {
        let lines = [
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::Submitted { now_us: 1 },
            },
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::DataSent {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 2,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::Accepted {
                    src: id(0),
                    seq: Seq::new(1),
                    from_reorder: true,
                    now_us: 3,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::CpiInserted {
                    src: id(0),
                    seq: Seq::new(1),
                    position: 4,
                    now_us: 5,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::F1Detected {
                    src: id(0),
                    expected: Seq::new(2),
                    got: Seq::new(4),
                    now_us: 6,
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::RetServed {
                    to: id(2),
                    seq: Seq::new(9),
                    now_us: 7,
                },
            },
            TraceLine::HostTco {
                node: 2,
                at_us: 8,
                dur_us: 14,
            },
        ];
        for line in &lines {
            let text = encode_line(line);
            assert_eq!(parse_line(&text), Some(*line), "round trip of {text}");
        }
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let trace = "garbage\n{\"node\":0,\"kind\":\"submitted\",\"t_us\":5}\n{\"kind\":9}";
        let parsed = parse_trace(trace);
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn round_trips_span_correlation_fields() {
        let lines = [
            TraceLine::Event {
                node: 2,
                event: ProtocolEvent::F2Detected {
                    src: id(0),
                    confirmed: Seq::new(5),
                    via: id(1),
                    now_us: 10,
                },
            },
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::FlowBlocked {
                    outstanding: 8,
                    limit: 8,
                    now_us: 11,
                },
            },
        ];
        for line in &lines {
            let text = encode_line(line);
            assert_eq!(parse_line_strict(&text), Ok(*line), "round trip of {text}");
        }
    }

    #[test]
    fn truncated_line_is_malformed() {
        let full = encode_line(&TraceLine::Event {
            node: 0,
            event: ProtocolEvent::Delivered {
                src: id(1),
                seq: Seq::new(3),
                now_us: 7,
            },
        });
        let truncated = &full[..full.len() - 1];
        assert_eq!(parse_line_strict(truncated), Err(LineError::Malformed));
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let line = "{\"node\":0,\"kind\":\"wormhole\",\"t_us\":5}";
        assert_eq!(
            parse_line_strict(line),
            Err(LineError::UnknownKind("wormhole".to_string()))
        );
        // The lenient parser still skips it (forward compatibility).
        assert_eq!(parse_line(line), None);
    }

    #[test]
    fn out_of_range_entity_id_is_a_typed_error() {
        let line = "{\"node\":0,\"kind\":\"delivered\",\"t_us\":5,\"src\":4294967296,\"seq\":1}";
        assert_eq!(
            parse_line_strict(line),
            Err(LineError::EntityOutOfRange {
                field: "src",
                value: 4_294_967_296,
            })
        );
        let line = "{\"node\":4294967296,\"kind\":\"submitted\",\"t_us\":5}";
        assert!(matches!(
            parse_line_strict(line),
            Err(LineError::EntityOutOfRange { field: "node", .. })
        ));
    }

    #[test]
    fn missing_field_is_a_typed_error() {
        let line = "{\"node\":0,\"kind\":\"delivered\",\"t_us\":5,\"seq\":1}";
        assert_eq!(parse_line_strict(line), Err(LineError::MissingField("src")));
    }

    #[test]
    fn strict_trace_parse_reports_the_line_number() {
        let trace =
            "{\"node\":0,\"kind\":\"submitted\",\"t_us\":5}\n\n{\"node\":0,\"kind\":\"submitted\"";
        let err = parse_trace_strict(trace).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.error, LineError::Malformed);
        assert!(err.to_string().contains("line 3"));
        let ok = parse_trace_strict("{\"node\":0,\"kind\":\"submitted\",\"t_us\":5}\n").unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn tap_joins_across_nodes() {
        let lines = vec![
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::DataSent {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 100,
                },
            },
            TraceLine::Event {
                node: 0,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 900, // self-delivery: excluded
                },
            },
            TraceLine::Event {
                node: 1,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 350,
                },
            },
            TraceLine::Event {
                node: 2,
                event: ProtocolEvent::Delivered {
                    src: id(0),
                    seq: Seq::new(1),
                    now_us: 400,
                },
            },
        ];
        let mut tap = tap_samples_us(&lines);
        tap.sort_unstable();
        assert_eq!(tap, vec![250, 300]);
    }

    #[test]
    fn tco_collects_host_samples() {
        let lines = vec![
            TraceLine::HostTco {
                node: 0,
                at_us: 1,
                dur_us: 10,
            },
            TraceLine::HostTco {
                node: 1,
                at_us: 2,
                dur_us: 20,
            },
        ];
        assert_eq!(tco_samples_us(&lines), vec![10, 20]);
    }
}
