//! The flight recorder: a fixed-capacity, allocation-free ring buffer of
//! the most recent [`ProtocolEvent`]s.
//!
//! Every production driver keeps one per entity (composed into the
//! observer stack via [`crate::Tee`]) so that a failure — an oracle
//! violation in `co-check`, a panicked node thread in `co-transport` —
//! yields the last `capacity` protocol transitions *without* the cost or
//! foresight of full tracing. The recorder allocates once at
//! construction and never again: `on_event` is a bounds-checked store
//! plus a wrap branch, cheap enough to stay always-on (the `co-bench`
//! `entity/accept_recorder/*` rows price it per size, and the guard pins
//! the n = 256 row at ≤110% of the [`crate::NoopObserver`] baseline).
//!
//! [`RecorderDump`] is the serialized form: the retained events as
//! standard JSONL trace lines (each parseable by
//! [`crate::jsonl::parse_line_strict`], so `co-cli trace analyze` works
//! on a dump directly) plus the labels that identify the cell the entity
//! ran in — node id, delivery-core name, network preset.

use crate::event::ProtocolEvent;
use crate::jsonl::{self, TraceLine};
use crate::observer::Observer;

/// Default ring depth drivers use when no explicit depth is configured.
pub const DEFAULT_RECORDER_DEPTH: usize = 256;

/// A fixed-capacity ring buffer of the most recent events.
///
/// `Default` yields a zero-capacity recorder that retains nothing (it
/// only exists so observer stacks containing a recorder can be
/// `std::mem::take`n across an entity crash-restart; the taken original
/// keeps its state and capacity).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    /// Event storage; grows by push until `capacity`, then wraps.
    buf: Vec<ProtocolEvent>,
    capacity: usize,
    /// When the buffer is full: index of the oldest retained event (and
    /// the next overwrite slot).
    head: usize,
    /// Events dropped to make room (or dropped outright at capacity 0).
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events. The single
    /// allocation happens here.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            evicted: 0,
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total events observed over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.evicted + self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ProtocolEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The retained events, oldest first, as an owned vector.
    pub fn events(&self) -> Vec<ProtocolEvent> {
        self.iter().copied().collect()
    }

    /// Forgets everything retained (capacity and the eviction counter
    /// are kept — the counter is lifetime telemetry).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl Observer for FlightRecorder {
    #[inline]
    fn on_event(&mut self, event: ProtocolEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else if self.capacity == 0 {
            self.evicted += 1;
        } else {
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.evicted += 1;
        }
    }
}

/// A serialized flight recorder: the retained events plus the labels
/// identifying where they were recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderDump {
    /// The recording entity's index.
    pub node: u32,
    /// Delivery-core name the entity ran (`"co"`, `"hybrid"`, ...).
    pub core: String,
    /// Network preset label the run used (`"uniform"`, ..., or a
    /// driver-specific label like `"inproc"`).
    pub network: String,
    /// The recorder's ring capacity.
    pub capacity: usize,
    /// Events evicted before the dump (how much history was lost).
    pub evicted: u64,
    /// The retained events, oldest first.
    pub events: Vec<ProtocolEvent>,
}

impl RecorderDump {
    /// Captures a recorder's current state under the given labels.
    pub fn capture(
        recorder: &FlightRecorder,
        node: u32,
        core: &str,
        network: &str,
    ) -> RecorderDump {
        RecorderDump {
            node,
            core: core.to_string(),
            network: network.to_string(),
            capacity: recorder.capacity(),
            evicted: recorder.evicted(),
            events: recorder.events(),
        }
    }

    /// The retained events as standard JSONL trace lines (no trailing
    /// newlines). Concatenating the lines of every node's dump yields a
    /// file `co-cli trace analyze` accepts as-is.
    pub fn event_lines(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|&event| {
                jsonl::encode_line(&TraceLine::Event {
                    node: self.node,
                    event,
                })
            })
            .collect()
    }

    /// Serializes the dump as one JSON object: the labels, the loss
    /// accounting, and the events as an array of JSONL line strings —
    /// the same shape `co-check` embeds under `flight_recorders` in a
    /// reproducer artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str(&format!(
            "{{\"node\":{},\"core\":\"{}\",\"network\":\"{}\",\"capacity\":{},\"evicted\":{},\"events\":[",
            self.node,
            escape_json(&self.core),
            escape_json(&self.network),
            self.capacity,
            self.evicted
        ));
        for (i, line) in self.event_lines().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(line));
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the dump's own lines contain quotes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_order::{EntityId, Seq};

    fn sample(now_us: u64) -> ProtocolEvent {
        ProtocolEvent::Delivered {
            src: EntityId::new(0),
            seq: Seq::new(now_us.max(1)),
            now_us,
        }
    }

    #[test]
    fn records_until_capacity_then_wraps() {
        let mut r = FlightRecorder::new(3);
        for t in 0..3 {
            r.on_event(sample(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 0);
        assert_eq!(
            r.events()
                .iter()
                .map(ProtocolEvent::now_us)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Two more: the two oldest fall out.
        r.on_event(sample(3));
        r.on_event(sample(4));
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(
            r.events()
                .iter()
                .map(ProtocolEvent::now_us)
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn capacity_zero_retains_nothing_but_counts() {
        let mut r = FlightRecorder::new(0);
        for t in 0..5 {
            r.on_event(sample(t));
        }
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 5);
        assert_eq!(r.recorded(), 5);
        assert!(r.events().is_empty());
    }

    #[test]
    fn capacity_one_keeps_the_latest() {
        let mut r = FlightRecorder::new(1);
        r.on_event(sample(7));
        assert_eq!(r.events()[0].now_us(), 7);
        r.on_event(sample(8));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].now_us(), 8);
        assert_eq!(r.evicted(), 1);
    }

    #[test]
    fn exact_fill_does_not_evict() {
        let mut r = FlightRecorder::new(4);
        for t in 0..4 {
            r.on_event(sample(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 0);
        assert_eq!(
            r.events()
                .iter()
                .map(ProtocolEvent::now_us)
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn wraps_many_times_and_stays_ordered() {
        let mut r = FlightRecorder::new(5);
        for t in 0..1_000 {
            r.on_event(sample(t));
        }
        assert_eq!(
            r.events()
                .iter()
                .map(ProtocolEvent::now_us)
                .collect::<Vec<_>>(),
            vec![995, 996, 997, 998, 999]
        );
        assert_eq!(r.evicted(), 995);
    }

    #[test]
    fn survives_mem_take_restore_cycle() {
        // co-check's crash-restart takes the observer out of the dying
        // entity and moves it into the restored one: the *taken* value
        // keeps recording with its original capacity and history.
        let mut r = FlightRecorder::new(2);
        r.on_event(sample(1));
        let mut taken = std::mem::take(&mut r);
        assert_eq!(r.capacity(), 0, "the placeholder retains nothing");
        taken.on_event(sample(2));
        taken.on_event(sample(3));
        assert_eq!(
            taken
                .events()
                .iter()
                .map(ProtocolEvent::now_us)
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(taken.capacity(), 2);
    }

    #[test]
    fn clear_keeps_capacity_and_eviction_count() {
        let mut r = FlightRecorder::new(2);
        for t in 0..4 {
            r.on_event(sample(t));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        assert_eq!(r.evicted(), 2);
        r.on_event(sample(9));
        assert_eq!(r.events()[0].now_us(), 9);
    }

    #[test]
    fn dump_lines_parse_back_as_trace_lines() {
        let mut r = FlightRecorder::new(8);
        r.on_event(sample(10));
        r.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 4,
            limit: 2,
            now_us: 11,
        });
        let dump = RecorderDump::capture(&r, 3, "hybrid", "wan");
        assert_eq!(dump.node, 3);
        assert_eq!(dump.capacity, 8);
        assert_eq!(dump.evicted, 0);
        let lines = dump.event_lines();
        assert_eq!(lines.len(), 2);
        for (line, &event) in lines.iter().zip(dump.events.iter()) {
            match jsonl::parse_line_strict(line).expect("dump line parses") {
                TraceLine::Event { node, event: back } => {
                    assert_eq!(node, 3);
                    assert_eq!(back, event);
                }
                other => panic!("expected event line, got {other:?}"),
            }
        }
    }

    #[test]
    fn dump_json_carries_labels_and_escaped_lines() {
        let mut r = FlightRecorder::new(2);
        r.on_event(sample(1));
        let dump = RecorderDump::capture(&r, 0, "co", "uniform");
        let json = dump.to_json();
        assert!(
            json.starts_with("{\"node\":0,\"core\":\"co\",\"network\":\"uniform\""),
            "{json}"
        );
        assert!(json.contains("\"capacity\":2"), "{json}");
        assert!(json.contains("\\\"kind\\\":\\\"delivered\\\""), "{json}");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
