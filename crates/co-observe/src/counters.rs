//! Counter snapshots and the event-stream fold that reconstructs them.

use crate::event::ProtocolEvent;
use crate::observer::Observer;

/// A point-in-time snapshot of the protocol counters.
///
/// This is the exchange type between the engine's internal `Metrics`
/// (`co_protocol::Metrics::snapshot` produces one) and the observability
/// layer ([`CounterFold`] reconstructs one from the event stream; the two
/// agree exactly — `co-protocol`'s property tests enforce it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Data PDUs broadcast for fresh application payloads.
    pub data_sent: u64,
    /// Data PDUs rebroadcast in response to `RET` requests.
    pub retransmissions_sent: u64,
    /// `RET` PDUs broadcast.
    pub ret_sent: u64,
    /// Confirmation-only PDUs broadcast.
    pub ack_only_sent: u64,
    /// Data PDUs accepted (ACC condition held).
    pub accepted: u64,
    /// Data PDUs accepted out of the reorder buffer after gap repair.
    pub accepted_from_reorder: u64,
    /// Messages delivered to the application (reached `ARL`).
    pub delivered: u64,
    /// Data PDUs pre-acknowledged (moved `RRL → PRL`).
    pub pre_acknowledged: u64,
    /// Gaps detected by failure condition F1 (sequence gap on receipt).
    pub f1_detections: u64,
    /// Gaps detected by failure condition F2 (ack-vector evidence).
    pub f2_detections: u64,
    /// Duplicate data PDUs ignored (already accepted).
    pub duplicates: u64,
    /// Out-of-order data PDUs stored in the reorder buffer.
    pub buffered_out_of_order: u64,
    /// Out-of-order data PDUs discarded (go-back-n policy).
    pub discarded_out_of_order: u64,
    /// Payloads queued because the flow condition was closed.
    pub flow_blocked: u64,
    /// `RET` requests suppressed because one is already outstanding.
    pub ret_suppressed: u64,
    /// PDUs requested for retransmission but missing from the send log.
    pub ret_unservable: u64,
}

impl Counters {
    /// Total PDUs put on the wire (broadcast once each).
    pub fn pdus_sent(&self) -> u64 {
        self.data_sent + self.retransmissions_sent + self.ret_sent + self.ack_only_sent
    }

    /// Total loss detections by either failure condition.
    pub fn loss_detections(&self) -> u64 {
        self.f1_detections + self.f2_detections
    }

    /// `(name, value)` pairs for every counter, in a fixed order — the
    /// single source of truth for the exporters.
    pub fn entries(&self) -> [(&'static str, u64); 16] {
        [
            ("data_sent", self.data_sent),
            ("retransmissions_sent", self.retransmissions_sent),
            ("ret_sent", self.ret_sent),
            ("ack_only_sent", self.ack_only_sent),
            ("accepted", self.accepted),
            ("accepted_from_reorder", self.accepted_from_reorder),
            ("delivered", self.delivered),
            ("pre_acknowledged", self.pre_acknowledged),
            ("f1_detections", self.f1_detections),
            ("f2_detections", self.f2_detections),
            ("duplicates", self.duplicates),
            ("buffered_out_of_order", self.buffered_out_of_order),
            ("discarded_out_of_order", self.discarded_out_of_order),
            ("flow_blocked", self.flow_blocked),
            ("ret_suppressed", self.ret_suppressed),
            ("ret_unservable", self.ret_unservable),
        ]
    }
}

/// Folds the event stream back into [`Counters`].
///
/// Every counter in the engine has exactly one emitting event, so a fold
/// over the complete stream reproduces `Metrics::snapshot()` bit for bit.
/// Purely informational events (reorder exits, CPI insertions, flow
/// re-opens, submissions) fold to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterFold {
    counters: Counters,
}

impl CounterFold {
    /// A zeroed fold.
    pub fn new() -> Self {
        CounterFold::default()
    }

    /// The counters reconstructed so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Folds a whole recorded stream at once.
    pub fn fold(events: &[ProtocolEvent]) -> Counters {
        let mut f = CounterFold::new();
        for &e in events {
            f.on_event(e);
        }
        f.counters()
    }
}

impl Observer for CounterFold {
    fn on_event(&mut self, event: ProtocolEvent) {
        let c = &mut self.counters;
        match event {
            ProtocolEvent::DataSent { .. } => c.data_sent += 1,
            ProtocolEvent::RetServed { .. } => c.retransmissions_sent += 1,
            ProtocolEvent::RetSent { .. } => c.ret_sent += 1,
            ProtocolEvent::AckOnlySent { .. } => c.ack_only_sent += 1,
            ProtocolEvent::Accepted { from_reorder, .. } => {
                c.accepted += 1;
                if from_reorder {
                    c.accepted_from_reorder += 1;
                }
            }
            ProtocolEvent::Delivered { .. } => c.delivered += 1,
            ProtocolEvent::PreAcked { .. } => c.pre_acknowledged += 1,
            ProtocolEvent::F1Detected { .. } => c.f1_detections += 1,
            ProtocolEvent::F2Detected { .. } => c.f2_detections += 1,
            ProtocolEvent::Duplicate { .. } => c.duplicates += 1,
            ProtocolEvent::ReorderEnter { .. } => c.buffered_out_of_order += 1,
            ProtocolEvent::OutOfOrderDiscarded { .. } => c.discarded_out_of_order += 1,
            ProtocolEvent::FlowClosed { .. } => c.flow_blocked += 1,
            ProtocolEvent::RetSuppressed { .. } => c.ret_suppressed += 1,
            ProtocolEvent::RetUnservable { amount, .. } => c.ret_unservable += amount,
            ProtocolEvent::Submitted { .. }
            | ProtocolEvent::FlowOpened { .. }
            | ProtocolEvent::FlowBlocked { .. }
            | ProtocolEvent::CpiInserted { .. }
            | ProtocolEvent::ReorderExit { .. } => {} // `ProtocolEvent` is non_exhaustive for downstream crates;
                                                      // within the defining layer the match is complete.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_order::{EntityId, Seq};

    #[test]
    fn fold_counts_each_kind() {
        let src = EntityId::new(1);
        let events = [
            ProtocolEvent::DataSent {
                src,
                seq: Seq::new(1),
                now_us: 0,
            },
            ProtocolEvent::Accepted {
                src,
                seq: Seq::new(1),
                from_reorder: false,
                now_us: 1,
            },
            ProtocolEvent::Accepted {
                src,
                seq: Seq::new(2),
                from_reorder: true,
                now_us: 2,
            },
            ProtocolEvent::RetUnservable {
                amount: 3,
                now_us: 3,
            },
            ProtocolEvent::ReorderExit {
                src,
                seq: Seq::new(2),
                now_us: 4,
            },
        ];
        let c = CounterFold::fold(&events);
        assert_eq!(c.data_sent, 1);
        assert_eq!(c.accepted, 2);
        assert_eq!(c.accepted_from_reorder, 1);
        assert_eq!(c.ret_unservable, 3);
        assert_eq!(c.delivered, 0);
        assert_eq!(c.pdus_sent(), 1);
    }

    #[test]
    fn entries_cover_all_counters() {
        let c = Counters {
            data_sent: 1,
            retransmissions_sent: 2,
            ret_sent: 3,
            ack_only_sent: 4,
            accepted: 5,
            accepted_from_reorder: 6,
            delivered: 7,
            pre_acknowledged: 8,
            f1_detections: 9,
            f2_detections: 10,
            duplicates: 11,
            buffered_out_of_order: 12,
            discarded_out_of_order: 13,
            flow_blocked: 14,
            ret_suppressed: 15,
            ret_unservable: 16,
        };
        let entries = c.entries();
        assert_eq!(entries.len(), 16);
        let sum: u64 = entries.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, (1..=16).sum::<u64>());
    }
}
