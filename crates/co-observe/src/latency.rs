//! Per-stage latency tracking over the event stream.

use std::collections::HashMap;
use std::collections::VecDeque;

use causal_order::{EntityId, Seq};

use crate::event::ProtocolEvent;
use crate::histogram::Histogram;
use crate::observer::Observer;

/// Derives per-PDU stage latencies from one entity's event stream and
/// accumulates them into fixed-bucket [`Histogram`]s:
///
/// * **submit → accept**: from `Submitted` to the payload's `DataSent`
///   (an entity self-accepts at broadcast, so this is the flow-condition
///   queueing delay; ~0 when the window is open).
/// * **accept → pre-ack**: from `Accepted`/`DataSent` to `PreAcked` —
///   how long until every entity is known to have the PDU.
/// * **accept → deliver**: from `Accepted`/`DataSent` to `Delivered` —
///   the full buffering latency until the ACK stage hands the message to
///   the application (in this engine the ACK transition and delivery
///   coincide, so this is also accept → ack).
/// * **RET round-trip**: from the first `RetSent` for a source to the
///   next PDU accepted from it — how long gap repair takes.
///
/// All state is bounded by the number of in-flight PDUs (entries are
/// removed at delivery), matching the engine's own O(n) buffer claim.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    submit_to_accept: Histogram,
    accept_to_preack: Histogram,
    accept_to_deliver: Histogram,
    ret_round_trip: Histogram,
    /// Admission timestamps of not-yet-sent submissions (FIFO — the
    /// engine's pending queue preserves order).
    submit_queue: VecDeque<u64>,
    /// Acceptance timestamp per in-flight PDU.
    accept_ts: HashMap<(u32, u64), u64>,
    /// Earliest outstanding `RET` timestamp per source.
    ret_ts: HashMap<u32, u64>,
}

impl LatencyTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        LatencyTracker::default()
    }

    /// Flow-condition queueing delay (submit → accept).
    pub fn submit_to_accept(&self) -> &Histogram {
        &self.submit_to_accept
    }

    /// Accept → pre-ack latency.
    pub fn accept_to_preack(&self) -> &Histogram {
        &self.accept_to_preack
    }

    /// Accept → deliver (= accept → ack) latency.
    pub fn accept_to_deliver(&self) -> &Histogram {
        &self.accept_to_deliver
    }

    /// RET round-trip latency.
    pub fn ret_round_trip(&self) -> &Histogram {
        &self.ret_round_trip
    }

    /// `(stage_name, histogram)` for every stage, in a fixed order.
    pub fn stages(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("submit_to_accept", &self.submit_to_accept),
            ("accept_to_preack", &self.accept_to_preack),
            ("accept_to_deliver", &self.accept_to_deliver),
            ("ret_round_trip", &self.ret_round_trip),
        ]
    }

    fn key(src: EntityId, seq: Seq) -> (u32, u64) {
        (src.index() as u32, seq.get())
    }
}

impl Observer for LatencyTracker {
    fn on_event(&mut self, event: ProtocolEvent) {
        match event {
            ProtocolEvent::Submitted { now_us } => self.submit_queue.push_back(now_us),
            ProtocolEvent::DataSent { src, seq, now_us } => {
                if let Some(at) = self.submit_queue.pop_front() {
                    self.submit_to_accept.record(now_us.saturating_sub(at));
                }
                // Broadcast is self-acceptance: start the buffering clock
                // for the entity's own PDU too.
                self.accept_ts.insert(Self::key(src, seq), now_us);
            }
            ProtocolEvent::Accepted {
                src, seq, now_us, ..
            } => {
                let idx = src.index() as u32;
                if let Some(at) = self.ret_ts.remove(&idx) {
                    self.ret_round_trip.record(now_us.saturating_sub(at));
                }
                self.accept_ts.insert(Self::key(src, seq), now_us);
            }
            ProtocolEvent::PreAcked { src, seq, now_us } => {
                if let Some(&at) = self.accept_ts.get(&Self::key(src, seq)) {
                    self.accept_to_preack.record(now_us.saturating_sub(at));
                }
            }
            ProtocolEvent::Delivered { src, seq, now_us } => {
                if let Some(at) = self.accept_ts.remove(&Self::key(src, seq)) {
                    self.accept_to_deliver.record(now_us.saturating_sub(at));
                }
            }
            ProtocolEvent::RetSent { src, now_us, .. } => {
                // Keep the *first* outstanding request: retries are part of
                // the same repair round-trip.
                self.ret_ts.entry(src.index() as u32).or_insert(now_us);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn tracks_accept_to_deliver() {
        let mut t = LatencyTracker::new();
        t.on_event(ProtocolEvent::Accepted {
            src: id(1),
            seq: Seq::new(1),
            from_reorder: false,
            now_us: 100,
        });
        t.on_event(ProtocolEvent::PreAcked {
            src: id(1),
            seq: Seq::new(1),
            now_us: 250,
        });
        t.on_event(ProtocolEvent::Delivered {
            src: id(1),
            seq: Seq::new(1),
            now_us: 400,
        });
        assert_eq!(t.accept_to_preack().count(), 1);
        assert_eq!(t.accept_to_preack().sum_us(), 150);
        assert_eq!(t.accept_to_deliver().count(), 1);
        assert_eq!(t.accept_to_deliver().sum_us(), 300);
        // Delivery removed the in-flight entry.
        assert!(t.accept_ts.is_empty());
    }

    #[test]
    fn tracks_submit_queueing_delay() {
        let mut t = LatencyTracker::new();
        t.on_event(ProtocolEvent::Submitted { now_us: 10 });
        t.on_event(ProtocolEvent::Submitted { now_us: 20 });
        t.on_event(ProtocolEvent::DataSent {
            src: id(0),
            seq: Seq::new(1),
            now_us: 10,
        });
        t.on_event(ProtocolEvent::DataSent {
            src: id(0),
            seq: Seq::new(2),
            now_us: 90,
        });
        assert_eq!(t.submit_to_accept().count(), 2);
        assert_eq!(t.submit_to_accept().sum_us(), 70);
    }

    #[test]
    fn ret_round_trip_spans_first_request_to_repair() {
        let mut t = LatencyTracker::new();
        t.on_event(ProtocolEvent::RetSent {
            src: id(2),
            lseq: Seq::new(5),
            now_us: 1000,
        });
        // A retry must not reset the clock.
        t.on_event(ProtocolEvent::RetSent {
            src: id(2),
            lseq: Seq::new(5),
            now_us: 2000,
        });
        t.on_event(ProtocolEvent::Accepted {
            src: id(2),
            seq: Seq::new(3),
            from_reorder: false,
            now_us: 2500,
        });
        assert_eq!(t.ret_round_trip().count(), 1);
        assert_eq!(t.ret_round_trip().sum_us(), 1500);
    }

    #[test]
    fn own_pdus_measured_from_broadcast() {
        let mut t = LatencyTracker::new();
        t.on_event(ProtocolEvent::Submitted { now_us: 0 });
        t.on_event(ProtocolEvent::DataSent {
            src: id(0),
            seq: Seq::new(1),
            now_us: 0,
        });
        t.on_event(ProtocolEvent::Delivered {
            src: id(0),
            seq: Seq::new(1),
            now_us: 640,
        });
        assert_eq!(t.accept_to_deliver().count(), 1);
        assert_eq!(t.accept_to_deliver().sum_us(), 640);
    }
}
