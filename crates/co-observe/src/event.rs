//! The structured protocol event stream.

use causal_order::{EntityId, Seq};

/// One instrumented protocol transition, emitted by an entity through its
/// [`crate::Observer`] at the moment the transition happens.
///
/// Events are tiny `Copy` values (no heap data) so that emission through a
/// [`crate::NoopObserver`] compiles away entirely. Every variant carries
/// the entity-local monotonic timestamp (`now_us`) the engine was driven
/// with; when the driver derives those timestamps from a shared epoch (as
/// `co-transport` does), events from different nodes can be joined on the
/// time axis.
///
/// The variants map onto the paper's three receipt levels and failure
/// conditions — see DESIGN.md ("Observability") for the full table:
///
/// * **Acceptance** (§4.2): [`ProtocolEvent::Accepted`], with the
///   out-of-order path around it ([`ProtocolEvent::F1Detected`],
///   [`ProtocolEvent::ReorderEnter`]/[`ProtocolEvent::ReorderExit`],
///   [`ProtocolEvent::OutOfOrderDiscarded`], [`ProtocolEvent::Duplicate`]).
/// * **Pre-acknowledgment** (§4.4): [`ProtocolEvent::PreAcked`] and the
///   CPI insertion it performs ([`ProtocolEvent::CpiInserted`]).
/// * **Acknowledgment** (§4.5): [`ProtocolEvent::Delivered`] — in this
///   engine the ACK transition and the application hand-off coincide.
/// * **Loss detection and repair** (§4.3): [`ProtocolEvent::F1Detected`],
///   [`ProtocolEvent::F2Detected`], [`ProtocolEvent::RetSent`] /
///   [`ProtocolEvent::RetSuppressed`] (request side),
///   [`ProtocolEvent::RetServed`] / [`ProtocolEvent::RetUnservable`]
///   (service side).
/// * **Flow condition** (§4.2): [`ProtocolEvent::FlowClosed`] /
///   [`ProtocolEvent::FlowOpened`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// The application handed a payload to `submit` and it was admitted
    /// (sent immediately or queued behind the flow condition).
    Submitted {
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A submitted payload was queued: the flow condition (§4.2) is
    /// closed.
    FlowClosed {
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// The flow condition re-opened and at least one queued payload was
    /// flushed.
    FlowOpened {
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// Gauge snapshot of the send window at the moment the flow condition
    /// (§4.2) blocked a submit. Emitted alongside
    /// [`ProtocolEvent::FlowClosed`]; the extra fields let offline
    /// analysis distinguish window exhaustion from buffer starvation.
    FlowBlocked {
        /// Own PDUs sent but not yet known accepted everywhere
        /// (`SEQ − minAL_i`).
        outstanding: u64,
        /// Effective window limit `min(W, minBUF/(H·2n))`; `0` means the
        /// slowest receiver's advertised buffer starves the share.
        limit: u64,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A fresh data PDU was broadcast (the transmission action; also the
    /// entity's self-acceptance of its own PDU).
    DataSent {
        /// The broadcasting entity (`src` of the PDU).
        src: EntityId,
        /// The assigned sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A data PDU passed the ACC condition and entered the `RRL`.
    Accepted {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Whether acceptance drained it out of the reorder buffer
        /// (gap repaired) rather than straight off the wire.
        from_reorder: bool,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A PDU moved `RRL → PRL` (the PACK action: every entity is known to
    /// have accepted it).
    PreAcked {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// The CPI operation inserted a pre-acknowledged PDU into the causal
    /// log at `position` (Theorem 4.1's sequence-number test).
    CpiInserted {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Zero-based insertion position in the PRL.
        position: u64,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A PDU reached the `ARL` and was handed to the application (the ACK
    /// action; globally stable, causally ordered).
    Delivered {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// Failure condition F1: a sequence gap on receipt
    /// (`p.SEQ > REQ_src`).
    F1Detected {
        /// The source with the gap.
        src: EntityId,
        /// The sequence number that was expected (`REQ_src`).
        expected: Seq,
        /// The sequence number that arrived instead.
        got: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// Failure condition F2: a piggybacked ACK vector proved PDUs exist
    /// that were never received (`q.ACK_j > REQ_j`).
    F2Detected {
        /// The source whose PDUs are missing.
        src: EntityId,
        /// The confirmed frontier that exposed the loss.
        confirmed: Seq,
        /// The peer whose ACK vector carried the evidence (span
        /// correlation: ties the detection to that peer's PDU).
        via: EntityId,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A duplicate data PDU was ignored (already accepted or already
    /// buffered).
    Duplicate {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// An out-of-order data PDU entered the reorder buffer (selective
    /// retransmission keeps it while the gap is repaired).
    ReorderEnter {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A buffered PDU left the reorder buffer to be accepted (the gap
    /// before it closed).
    ReorderExit {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// An out-of-order data PDU was discarded (go-back-n policy).
    OutOfOrderDiscarded {
        /// The PDU's source.
        src: EntityId,
        /// The PDU's sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A `RET` request for the gap `[REQ_src, lseq)` was broadcast.
    RetSent {
        /// The source whose PDUs are missing.
        src: EntityId,
        /// One past the last missing sequence number.
        lseq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A loss detection was deduplicated: a fresh `RET` covering the gap
    /// is already outstanding.
    RetSuppressed {
        /// The source whose PDUs are missing.
        src: EntityId,
        /// One past the last missing sequence number.
        lseq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// This entity rebroadcast one of its own PDUs in response to a `RET`
    /// (retransmission action, §4.3) — one event per PDU served.
    RetServed {
        /// The requesting entity.
        to: EntityId,
        /// The rebroadcast sequence number.
        seq: Seq,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// Part of a `RET` range could not be served: the PDUs were already
    /// pruned from the send log.
    RetUnservable {
        /// How many requested PDUs were missing from the send log.
        amount: u64,
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
    /// A confirmation-only PDU was broadcast (deferred confirmation, lag
    /// reply, or stability heartbeat).
    AckOnlySent {
        /// Entity-local monotonic time, µs.
        now_us: u64,
    },
}

impl ProtocolEvent {
    /// The event's timestamp (entity-local monotonic µs).
    pub fn now_us(&self) -> u64 {
        match *self {
            ProtocolEvent::Submitted { now_us }
            | ProtocolEvent::FlowClosed { now_us }
            | ProtocolEvent::FlowOpened { now_us }
            | ProtocolEvent::FlowBlocked { now_us, .. }
            | ProtocolEvent::DataSent { now_us, .. }
            | ProtocolEvent::Accepted { now_us, .. }
            | ProtocolEvent::PreAcked { now_us, .. }
            | ProtocolEvent::CpiInserted { now_us, .. }
            | ProtocolEvent::Delivered { now_us, .. }
            | ProtocolEvent::F1Detected { now_us, .. }
            | ProtocolEvent::F2Detected { now_us, .. }
            | ProtocolEvent::Duplicate { now_us, .. }
            | ProtocolEvent::ReorderEnter { now_us, .. }
            | ProtocolEvent::ReorderExit { now_us, .. }
            | ProtocolEvent::OutOfOrderDiscarded { now_us, .. }
            | ProtocolEvent::RetSent { now_us, .. }
            | ProtocolEvent::RetSuppressed { now_us, .. }
            | ProtocolEvent::RetServed { now_us, .. }
            | ProtocolEvent::RetUnservable { now_us, .. }
            | ProtocolEvent::AckOnlySent { now_us } => now_us,
        }
    }

    /// A short stable name for the event kind (used by the JSONL exporter
    /// and the Prometheus endpoint; part of the trace format).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::Submitted { .. } => "submitted",
            ProtocolEvent::FlowClosed { .. } => "flow_closed",
            ProtocolEvent::FlowOpened { .. } => "flow_opened",
            ProtocolEvent::FlowBlocked { .. } => "flow_blocked",
            ProtocolEvent::DataSent { .. } => "data_sent",
            ProtocolEvent::Accepted { .. } => "accepted",
            ProtocolEvent::PreAcked { .. } => "pre_acked",
            ProtocolEvent::CpiInserted { .. } => "cpi_inserted",
            ProtocolEvent::Delivered { .. } => "delivered",
            ProtocolEvent::F1Detected { .. } => "f1_detected",
            ProtocolEvent::F2Detected { .. } => "f2_detected",
            ProtocolEvent::Duplicate { .. } => "duplicate",
            ProtocolEvent::ReorderEnter { .. } => "reorder_enter",
            ProtocolEvent::ReorderExit { .. } => "reorder_exit",
            ProtocolEvent::OutOfOrderDiscarded { .. } => "ooo_discarded",
            ProtocolEvent::RetSent { .. } => "ret_sent",
            ProtocolEvent::RetSuppressed { .. } => "ret_suppressed",
            ProtocolEvent::RetServed { .. } => "ret_served",
            ProtocolEvent::RetUnservable { .. } => "ret_unservable",
            ProtocolEvent::AckOnlySent { .. } => "ack_only_sent",
        }
    }

    /// A fixed-width stable encoding of the event, used by
    /// [`crate::DigestObserver`]: `[tag, a, b, c, now_us]` where `a`–`c`
    /// are the variant's fields in declaration order (zero-padded). Stable
    /// across runs and platforms by construction — no hasher state, no
    /// pointer values.
    pub fn encode_words(&self) -> [u64; 5] {
        let id = |e: EntityId| e.index() as u64;
        match *self {
            ProtocolEvent::Submitted { now_us } => [0, 0, 0, 0, now_us],
            ProtocolEvent::FlowClosed { now_us } => [1, 0, 0, 0, now_us],
            ProtocolEvent::FlowOpened { now_us } => [2, 0, 0, 0, now_us],
            ProtocolEvent::DataSent { src, seq, now_us } => [3, id(src), seq.get(), 0, now_us],
            ProtocolEvent::Accepted {
                src,
                seq,
                from_reorder,
                now_us,
            } => [4, id(src), seq.get(), u64::from(from_reorder), now_us],
            ProtocolEvent::PreAcked { src, seq, now_us } => [5, id(src), seq.get(), 0, now_us],
            ProtocolEvent::CpiInserted {
                src,
                seq,
                position,
                now_us,
            } => [6, id(src), seq.get(), position, now_us],
            ProtocolEvent::Delivered { src, seq, now_us } => [7, id(src), seq.get(), 0, now_us],
            ProtocolEvent::F1Detected {
                src,
                expected,
                got,
                now_us,
            } => [8, id(src), expected.get(), got.get(), now_us],
            ProtocolEvent::F2Detected {
                src,
                confirmed,
                via,
                now_us,
            } => [9, id(src), confirmed.get(), id(via), now_us],
            ProtocolEvent::Duplicate { src, seq, now_us } => [10, id(src), seq.get(), 0, now_us],
            ProtocolEvent::ReorderEnter { src, seq, now_us } => [11, id(src), seq.get(), 0, now_us],
            ProtocolEvent::ReorderExit { src, seq, now_us } => [12, id(src), seq.get(), 0, now_us],
            ProtocolEvent::OutOfOrderDiscarded { src, seq, now_us } => {
                [13, id(src), seq.get(), 0, now_us]
            }
            ProtocolEvent::RetSent { src, lseq, now_us } => [14, id(src), lseq.get(), 0, now_us],
            ProtocolEvent::RetSuppressed { src, lseq, now_us } => {
                [15, id(src), lseq.get(), 0, now_us]
            }
            ProtocolEvent::RetServed { to, seq, now_us } => [16, id(to), seq.get(), 0, now_us],
            ProtocolEvent::RetUnservable { amount, now_us } => [17, amount, 0, 0, now_us],
            ProtocolEvent::AckOnlySent { now_us } => [18, 0, 0, 0, now_us],
            ProtocolEvent::FlowBlocked {
                outstanding,
                limit,
                now_us,
            } => [19, outstanding, limit, 0, now_us],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_round_trip() {
        let e = ProtocolEvent::Accepted {
            src: EntityId::new(2),
            seq: Seq::new(7),
            from_reorder: true,
            now_us: 123,
        };
        assert_eq!(e.now_us(), 123);
        assert_eq!(e.kind(), "accepted");
        assert_eq!(e.encode_words(), [4, 2, 7, 1, 123]);
    }

    #[test]
    fn kinds_are_distinct() {
        let events = [
            ProtocolEvent::Submitted { now_us: 0 },
            ProtocolEvent::FlowClosed { now_us: 0 },
            ProtocolEvent::FlowOpened { now_us: 0 },
            ProtocolEvent::FlowBlocked {
                outstanding: 4,
                limit: 4,
                now_us: 0,
            },
            ProtocolEvent::AckOnlySent { now_us: 0 },
            ProtocolEvent::RetUnservable {
                amount: 1,
                now_us: 0,
            },
        ];
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
