//! Prometheus-style text exposition of counters, histograms, flow
//! gauges, and live anomaly findings.
//!
//! Every series carries the same label set, rendered by
//! [`SeriesLabels`]: `node` always, plus `core` and `network` when the
//! driver knows which delivery core and network preset the entity runs
//! under — so one scrape endpoint can serve many cells of the
//! core×network matrix distinguishably. All label values pass through
//! [`escape_label_value`], no exceptions.

use crate::counters::Counters;
use crate::flow::FlowGauge;
use crate::latency::LatencyTracker;

/// Escapes a label value per the Prometheus text-format spec: backslash,
/// double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The label set shared by every rendered series: the node index, plus
/// optional delivery-core and network-preset labels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesLabels {
    /// The entity index (`node` label).
    pub node: u32,
    /// Delivery-core name (`core` label); omitted when `None`.
    pub core: Option<String>,
    /// Network preset label (`network` label); omitted when `None`.
    pub network: Option<String>,
}

impl SeriesLabels {
    /// Labels with only the node set.
    pub fn node(node: u32) -> SeriesLabels {
        SeriesLabels {
            node,
            core: None,
            network: None,
        }
    }

    /// Adds the delivery-core label.
    #[must_use]
    pub fn with_core(mut self, core: &str) -> SeriesLabels {
        self.core = Some(core.to_string());
        self
    }

    /// Adds the network-preset label.
    #[must_use]
    pub fn with_network(mut self, network: &str) -> SeriesLabels {
        self.network = Some(network.to_string());
        self
    }

    /// The label body, without braces: `node="0",core="co",...`. Every
    /// value is escaped.
    fn body(&self) -> String {
        let mut out = format!("node=\"{}\"", self.node);
        if let Some(core) = &self.core {
            out.push_str(",core=\"");
            out.push_str(&escape_label_value(core));
            out.push('"');
        }
        if let Some(network) = &self.network {
            out.push_str(",network=\"");
            out.push_str(&escape_label_value(network));
            out.push('"');
        }
        out
    }
}

/// One-line help text for a counter, keyed by its
/// [`Counters::entries`] name.
fn counter_help(name: &str) -> &'static str {
    match name {
        "data_sent" => "Data PDUs broadcast for fresh application payloads.",
        "retransmissions_sent" => "Data PDUs rebroadcast in response to RET requests.",
        "ret_sent" => "RET PDUs broadcast.",
        "ack_only_sent" => "Confirmation-only PDUs broadcast.",
        "accepted" => "Data PDUs accepted (ACC condition held).",
        "accepted_from_reorder" => "Data PDUs accepted out of the reorder buffer after gap repair.",
        "delivered" => "Messages delivered to the application (reached ARL).",
        "pre_acknowledged" => "Data PDUs pre-acknowledged (moved RRL to PRL).",
        "f1_detections" => "Gaps detected by failure condition F1 (sequence gap on receipt).",
        "f2_detections" => "Gaps detected by failure condition F2 (ack-vector evidence).",
        "duplicates" => "Duplicate data PDUs ignored (already accepted).",
        "buffered_out_of_order" => "Out-of-order data PDUs stored in the reorder buffer.",
        "discarded_out_of_order" => "Out-of-order data PDUs discarded (go-back-n policy).",
        "flow_blocked" => "Payloads queued because the flow condition was closed.",
        "ret_suppressed" => "RET requests suppressed because one is already outstanding.",
        "ret_unservable" => "PDUs requested for retransmission but missing from the send log.",
        _ => "Protocol counter.",
    }
}

/// Renders the counters in Prometheus text format, one
/// `co_<counter>_total` metric per entry, labeled per [`SeriesLabels`].
pub fn render_counters(labels: &SeriesLabels, counters: &Counters, out: &mut String) {
    let body = labels.body();
    for (name, value) in counters.entries() {
        out.push_str("# HELP co_");
        out.push_str(name);
        out.push_str("_total ");
        out.push_str(counter_help(name));
        out.push('\n');
        out.push_str("# TYPE co_");
        out.push_str(name);
        out.push_str("_total counter\n");
        out.push_str(&format!("co_{name}_total{{{body}}} {value}\n"));
    }
}

/// Renders the latency histograms in Prometheus text format as
/// `co_latency_us` histogram series labeled per [`SeriesLabels`] and by
/// stage.
pub fn render_latency(labels: &SeriesLabels, latency: &LatencyTracker, out: &mut String) {
    let body = labels.body();
    out.push_str("# HELP co_latency_us Per-stage protocol latency, microseconds.\n");
    out.push_str("# TYPE co_latency_us histogram\n");
    for (stage, hist) in latency.stages() {
        let stage = escape_label_value(stage);
        let mut last = 0;
        for (le, cumulative) in hist.cumulative_buckets() {
            // Only emit buckets that add information (plus the +Inf edge).
            if cumulative != last || le == u64::MAX {
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                out.push_str(&format!(
                    "co_latency_us_bucket{{{body},stage=\"{stage}\",le=\"{le}\"}} {cumulative}\n"
                ));
                last = cumulative;
            }
        }
        out.push_str(&format!(
            "co_latency_us_sum{{{body},stage=\"{stage}\"}} {}\n",
            hist.sum_us()
        ));
        out.push_str(&format!(
            "co_latency_us_count{{{body},stage=\"{stage}\"}} {}\n",
            hist.count()
        ));
    }
}

/// Renders the flow-condition gauges (§4.2 send-window state) in
/// Prometheus text format.
pub fn render_flow(labels: &SeriesLabels, flow: &FlowGauge, out: &mut String) {
    let body = labels.body();
    out.push_str("# HELP co_flow_blocked Whether the flow condition currently blocks sends (1) or not (0).\n");
    out.push_str("# TYPE co_flow_blocked gauge\n");
    out.push_str(&format!(
        "co_flow_blocked{{{body}}} {}\n",
        u64::from(flow.blocked_now())
    ));
    out.push_str(
        "# HELP co_flow_outstanding Own PDUs sent but not yet known accepted everywhere, at the last blocked submit.\n",
    );
    out.push_str("# TYPE co_flow_outstanding gauge\n");
    out.push_str(&format!(
        "co_flow_outstanding{{{body}}} {}\n",
        flow.last_outstanding()
    ));
    out.push_str(
        "# HELP co_flow_limit Effective send-window limit min(W, minBUF/(H*2n)) at the last blocked submit; 0 means starved.\n",
    );
    out.push_str("# TYPE co_flow_limit gauge\n");
    out.push_str(&format!("co_flow_limit{{{body}}} {}\n", flow.last_limit()));
    out.push_str("# HELP co_flow_blocked_events_total Submits blocked by the flow condition.\n");
    out.push_str("# TYPE co_flow_blocked_events_total counter\n");
    out.push_str(&format!(
        "co_flow_blocked_events_total{{{body}}} {}\n",
        flow.blocked_events()
    ));
}

/// Renders live streaming-detector findings as the
/// `co_anomaly_findings` gauge, one sample per finding kind.
///
/// A gauge, not a counter: span-derived findings (`stuck_at_pre_ack`,
/// `never_acknowledged`) can clear when a late delivery lands.
/// `kind_counts` pairs each finding kind with its current count;
/// kinds with zero findings should still be passed so the series reads
/// as explicitly clear rather than absent.
pub fn render_findings(labels: &SeriesLabels, kind_counts: &[(&str, u64)], out: &mut String) {
    let body = labels.body();
    out.push_str(
        "# HELP co_anomaly_findings Live streaming anomaly-detector findings, by rule kind.\n",
    );
    out.push_str("# TYPE co_anomaly_findings gauge\n");
    for (kind, count) in kind_counts {
        out.push_str(&format!(
            "co_anomaly_findings{{{body},kind=\"{}\"}} {count}\n",
            escape_label_value(kind)
        ));
    }
}

/// Full exposition: counters plus histograms.
pub fn render(labels: &SeriesLabels, counters: &Counters, latency: &LatencyTracker) -> String {
    let mut out = String::with_capacity(4096);
    render_counters(labels, counters, &mut out);
    render_latency(labels, latency, &mut out);
    out
}

/// Full exposition including the flow gauges.
pub fn render_with_flow(
    labels: &SeriesLabels,
    counters: &Counters,
    latency: &LatencyTracker,
    flow: &FlowGauge,
) -> String {
    let mut out = render(labels, counters, latency);
    render_flow(labels, flow, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtocolEvent;
    use crate::observer::Observer;
    use causal_order::{EntityId, Seq};

    #[test]
    fn renders_counters_and_histograms() {
        let counters = Counters {
            delivered: 3,
            ..Counters::default()
        };
        let mut latency = LatencyTracker::new();
        latency.on_event(ProtocolEvent::Accepted {
            src: EntityId::new(1),
            seq: Seq::new(1),
            from_reorder: false,
            now_us: 0,
        });
        latency.on_event(ProtocolEvent::Delivered {
            src: EntityId::new(1),
            seq: Seq::new(1),
            now_us: 750,
        });
        let text = render(&SeriesLabels::node(0), &counters, &latency);
        assert!(text.contains("co_delivered_total{node=\"0\"} 3"));
        assert!(text.contains("# HELP co_delivered_total "));
        assert!(text.contains("co_latency_us_count{node=\"0\",stage=\"accept_to_deliver\"} 1"));
        assert!(text.contains("co_latency_us_sum{node=\"0\",stage=\"accept_to_deliver\"} 750"));
        assert!(text.contains("le=\"+Inf\""));
        // Every line is either a comment or a metric sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad line {line}"
            );
        }
    }

    #[test]
    fn renders_flow_gauges_with_help_and_type() {
        let mut flow = FlowGauge::new();
        flow.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 12,
            limit: 8,
            now_us: 5,
        });
        let text = render_with_flow(
            &SeriesLabels::node(2),
            &Counters::default(),
            &LatencyTracker::new(),
            &flow,
        );
        assert!(text.contains("# TYPE co_flow_blocked gauge"));
        assert!(text.contains("# HELP co_flow_blocked "));
        assert!(text.contains("co_flow_blocked{node=\"2\"} 1"));
        assert!(text.contains("co_flow_outstanding{node=\"2\"} 12"));
        assert!(text.contains("co_flow_limit{node=\"2\"} 8"));
        assert!(text.contains("# TYPE co_flow_blocked_events_total counter"));
        assert!(text.contains("co_flow_blocked_events_total{node=\"2\"} 1"));
    }

    #[test]
    fn core_and_network_labels_appear_on_every_series() {
        let labels = SeriesLabels::node(1)
            .with_core("hybrid")
            .with_network("wan");
        let mut flow = FlowGauge::new();
        flow.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 1,
            limit: 1,
            now_us: 1,
        });
        let text = render_with_flow(&labels, &Counters::default(), &LatencyTracker::new(), &flow);
        let body = "node=\"1\",core=\"hybrid\",network=\"wan\"";
        assert!(
            text.contains(&format!("co_delivered_total{{{body}}}")),
            "{text}"
        );
        assert!(
            text.contains(&format!("co_flow_blocked{{{body}}}")),
            "{text}"
        );
        // No series slips through with node-only labels.
        assert!(!text.contains("{node=\"1\"}"), "{text}");
    }

    #[test]
    fn label_values_are_escaped_consistently() {
        let labels = SeriesLabels::node(0)
            .with_core("c\"o")
            .with_network("wa\\n");
        let mut out = String::new();
        render_counters(&labels, &Counters::default(), &mut out);
        assert!(out.contains("core=\"c\\\"o\""), "{out}");
        assert!(out.contains("network=\"wa\\\\n\""), "{out}");
    }

    #[test]
    fn renders_findings_gauge() {
        let labels = SeriesLabels::node(0)
            .with_core("co")
            .with_network("uniform");
        let mut out = String::new();
        render_findings(
            &labels,
            &[("ret_storm", 2), ("loss_burst", 0), ("flow_saturation", 1)],
            &mut out,
        );
        assert!(out.contains("# TYPE co_anomaly_findings gauge"));
        assert!(out.contains(
            "co_anomaly_findings{node=\"0\",core=\"co\",network=\"uniform\",kind=\"ret_storm\"} 2"
        ));
        assert!(
            out.contains("kind=\"loss_burst\"} 0"),
            "zero kinds are explicit: {out}"
        );
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        // Composition: every special character in one value.
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }
}
