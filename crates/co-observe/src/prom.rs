//! Prometheus-style text exposition of counters and histograms.

use crate::counters::Counters;
use crate::latency::LatencyTracker;

/// Renders the counters in Prometheus text format, one
/// `co_<counter>_total` metric per entry, labeled by node.
pub fn render_counters(node: u32, counters: &Counters, out: &mut String) {
    for (name, value) in counters.entries() {
        out.push_str("# TYPE co_");
        out.push_str(name);
        out.push_str("_total counter\n");
        out.push_str(&format!("co_{name}_total{{node=\"{node}\"}} {value}\n"));
    }
}

/// Renders the latency histograms in Prometheus text format as
/// `co_latency_us` histogram series labeled by node and stage.
pub fn render_latency(node: u32, latency: &LatencyTracker, out: &mut String) {
    out.push_str("# TYPE co_latency_us histogram\n");
    for (stage, hist) in latency.stages() {
        let mut last = 0;
        for (le, cumulative) in hist.cumulative_buckets() {
            // Only emit buckets that add information (plus the +Inf edge).
            if cumulative != last || le == u64::MAX {
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                out.push_str(&format!(
                    "co_latency_us_bucket{{node=\"{node}\",stage=\"{stage}\",le=\"{le}\"}} {cumulative}\n"
                ));
                last = cumulative;
            }
        }
        out.push_str(&format!(
            "co_latency_us_sum{{node=\"{node}\",stage=\"{stage}\"}} {}\n",
            hist.sum_us()
        ));
        out.push_str(&format!(
            "co_latency_us_count{{node=\"{node}\",stage=\"{stage}\"}} {}\n",
            hist.count()
        ));
    }
}

/// Full exposition: counters plus histograms.
pub fn render(node: u32, counters: &Counters, latency: &LatencyTracker) -> String {
    let mut out = String::with_capacity(4096);
    render_counters(node, counters, &mut out);
    render_latency(node, latency, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtocolEvent;
    use crate::observer::Observer;
    use causal_order::{EntityId, Seq};

    #[test]
    fn renders_counters_and_histograms() {
        let counters = Counters {
            delivered: 3,
            ..Counters::default()
        };
        let mut latency = LatencyTracker::new();
        latency.on_event(ProtocolEvent::Accepted {
            src: EntityId::new(1),
            seq: Seq::new(1),
            from_reorder: false,
            now_us: 0,
        });
        latency.on_event(ProtocolEvent::Delivered {
            src: EntityId::new(1),
            seq: Seq::new(1),
            now_us: 750,
        });
        let text = render(0, &counters, &latency);
        assert!(text.contains("co_delivered_total{node=\"0\"} 3"));
        assert!(text.contains("co_latency_us_count{node=\"0\",stage=\"accept_to_deliver\"} 1"));
        assert!(text.contains("co_latency_us_sum{node=\"0\",stage=\"accept_to_deliver\"} 750"));
        assert!(text.contains("le=\"+Inf\""));
        // Every line is either a comment or a metric sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad line {line}"
            );
        }
    }
}
