//! Prometheus-style text exposition of counters, histograms, and flow
//! gauges.

use crate::counters::Counters;
use crate::flow::FlowGauge;
use crate::latency::LatencyTracker;

/// Escapes a label value per the Prometheus text-format spec: backslash,
/// double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// One-line help text for a counter, keyed by its
/// [`Counters::entries`] name.
fn counter_help(name: &str) -> &'static str {
    match name {
        "data_sent" => "Data PDUs broadcast for fresh application payloads.",
        "retransmissions_sent" => "Data PDUs rebroadcast in response to RET requests.",
        "ret_sent" => "RET PDUs broadcast.",
        "ack_only_sent" => "Confirmation-only PDUs broadcast.",
        "accepted" => "Data PDUs accepted (ACC condition held).",
        "accepted_from_reorder" => "Data PDUs accepted out of the reorder buffer after gap repair.",
        "delivered" => "Messages delivered to the application (reached ARL).",
        "pre_acknowledged" => "Data PDUs pre-acknowledged (moved RRL to PRL).",
        "f1_detections" => "Gaps detected by failure condition F1 (sequence gap on receipt).",
        "f2_detections" => "Gaps detected by failure condition F2 (ack-vector evidence).",
        "duplicates" => "Duplicate data PDUs ignored (already accepted).",
        "buffered_out_of_order" => "Out-of-order data PDUs stored in the reorder buffer.",
        "discarded_out_of_order" => "Out-of-order data PDUs discarded (go-back-n policy).",
        "flow_blocked" => "Payloads queued because the flow condition was closed.",
        "ret_suppressed" => "RET requests suppressed because one is already outstanding.",
        "ret_unservable" => "PDUs requested for retransmission but missing from the send log.",
        _ => "Protocol counter.",
    }
}

/// Renders the counters in Prometheus text format, one
/// `co_<counter>_total` metric per entry, labeled by node.
pub fn render_counters(node: u32, counters: &Counters, out: &mut String) {
    for (name, value) in counters.entries() {
        out.push_str("# HELP co_");
        out.push_str(name);
        out.push_str("_total ");
        out.push_str(counter_help(name));
        out.push('\n');
        out.push_str("# TYPE co_");
        out.push_str(name);
        out.push_str("_total counter\n");
        out.push_str(&format!("co_{name}_total{{node=\"{node}\"}} {value}\n"));
    }
}

/// Renders the latency histograms in Prometheus text format as
/// `co_latency_us` histogram series labeled by node and stage.
pub fn render_latency(node: u32, latency: &LatencyTracker, out: &mut String) {
    out.push_str("# HELP co_latency_us Per-stage protocol latency, microseconds.\n");
    out.push_str("# TYPE co_latency_us histogram\n");
    for (stage, hist) in latency.stages() {
        let stage = escape_label_value(stage);
        let mut last = 0;
        for (le, cumulative) in hist.cumulative_buckets() {
            // Only emit buckets that add information (plus the +Inf edge).
            if cumulative != last || le == u64::MAX {
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                out.push_str(&format!(
                    "co_latency_us_bucket{{node=\"{node}\",stage=\"{stage}\",le=\"{le}\"}} {cumulative}\n"
                ));
                last = cumulative;
            }
        }
        out.push_str(&format!(
            "co_latency_us_sum{{node=\"{node}\",stage=\"{stage}\"}} {}\n",
            hist.sum_us()
        ));
        out.push_str(&format!(
            "co_latency_us_count{{node=\"{node}\",stage=\"{stage}\"}} {}\n",
            hist.count()
        ));
    }
}

/// Renders the flow-condition gauges (§4.2 send-window state) in
/// Prometheus text format.
pub fn render_flow(node: u32, flow: &FlowGauge, out: &mut String) {
    out.push_str("# HELP co_flow_blocked Whether the flow condition currently blocks sends (1) or not (0).\n");
    out.push_str("# TYPE co_flow_blocked gauge\n");
    out.push_str(&format!(
        "co_flow_blocked{{node=\"{node}\"}} {}\n",
        u64::from(flow.blocked_now())
    ));
    out.push_str(
        "# HELP co_flow_outstanding Own PDUs sent but not yet known accepted everywhere, at the last blocked submit.\n",
    );
    out.push_str("# TYPE co_flow_outstanding gauge\n");
    out.push_str(&format!(
        "co_flow_outstanding{{node=\"{node}\"}} {}\n",
        flow.last_outstanding()
    ));
    out.push_str(
        "# HELP co_flow_limit Effective send-window limit min(W, minBUF/(H*2n)) at the last blocked submit; 0 means starved.\n",
    );
    out.push_str("# TYPE co_flow_limit gauge\n");
    out.push_str(&format!(
        "co_flow_limit{{node=\"{node}\"}} {}\n",
        flow.last_limit()
    ));
    out.push_str("# HELP co_flow_blocked_events_total Submits blocked by the flow condition.\n");
    out.push_str("# TYPE co_flow_blocked_events_total counter\n");
    out.push_str(&format!(
        "co_flow_blocked_events_total{{node=\"{node}\"}} {}\n",
        flow.blocked_events()
    ));
}

/// Full exposition: counters plus histograms.
pub fn render(node: u32, counters: &Counters, latency: &LatencyTracker) -> String {
    let mut out = String::with_capacity(4096);
    render_counters(node, counters, &mut out);
    render_latency(node, latency, &mut out);
    out
}

/// Full exposition including the flow gauges.
pub fn render_with_flow(
    node: u32,
    counters: &Counters,
    latency: &LatencyTracker,
    flow: &FlowGauge,
) -> String {
    let mut out = render(node, counters, latency);
    render_flow(node, flow, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtocolEvent;
    use crate::observer::Observer;
    use causal_order::{EntityId, Seq};

    #[test]
    fn renders_counters_and_histograms() {
        let counters = Counters {
            delivered: 3,
            ..Counters::default()
        };
        let mut latency = LatencyTracker::new();
        latency.on_event(ProtocolEvent::Accepted {
            src: EntityId::new(1),
            seq: Seq::new(1),
            from_reorder: false,
            now_us: 0,
        });
        latency.on_event(ProtocolEvent::Delivered {
            src: EntityId::new(1),
            seq: Seq::new(1),
            now_us: 750,
        });
        let text = render(0, &counters, &latency);
        assert!(text.contains("co_delivered_total{node=\"0\"} 3"));
        assert!(text.contains("# HELP co_delivered_total "));
        assert!(text.contains("co_latency_us_count{node=\"0\",stage=\"accept_to_deliver\"} 1"));
        assert!(text.contains("co_latency_us_sum{node=\"0\",stage=\"accept_to_deliver\"} 750"));
        assert!(text.contains("le=\"+Inf\""));
        // Every line is either a comment or a metric sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad line {line}"
            );
        }
    }

    #[test]
    fn renders_flow_gauges_with_help_and_type() {
        let mut flow = FlowGauge::new();
        flow.on_event(ProtocolEvent::FlowBlocked {
            outstanding: 12,
            limit: 8,
            now_us: 5,
        });
        let text = render_with_flow(2, &Counters::default(), &LatencyTracker::new(), &flow);
        assert!(text.contains("# TYPE co_flow_blocked gauge"));
        assert!(text.contains("# HELP co_flow_blocked "));
        assert!(text.contains("co_flow_blocked{node=\"2\"} 1"));
        assert!(text.contains("co_flow_outstanding{node=\"2\"} 12"));
        assert!(text.contains("co_flow_limit{node=\"2\"} 8"));
        assert!(text.contains("# TYPE co_flow_blocked_events_total counter"));
        assert!(text.contains("co_flow_blocked_events_total{node=\"2\"} 1"));
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        // Composition: every special character in one value.
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }
}
