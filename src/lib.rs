//! # co-broadcast — Causally Ordering Broadcast (CO) Protocol
//!
//! Facade crate for a reproduction of *Nakamura & Takizawa, "Causally
//! Ordering Broadcast Protocol", ICDCS 1994*. Re-exports the workspace
//! crates under one roof; see the README for the architecture and the
//! `examples/` directory for runnable scenarios.
//!
//! # Example
//!
//! A two-entity cluster wired by hand — note that delivery requires the
//! full acknowledgment exchange, not just receipt (the paper's
//! atomic-receipt staging). The simulator and the threaded/UDP transports
//! run this loop for you — see [`net`] and [`transport`].
//!
//! ```
//! use bytes::Bytes;
//! use causal_order::EntityId;
//! use co_broadcast::protocol::{Action, Config, DeferralPolicy, Entity};
//!
//! let build = |i| {
//!     Entity::new(
//!         Config::builder(0, 2, EntityId::new(i))
//!             .deferral(DeferralPolicy::Immediate)
//!             .build()?,
//!     )
//! };
//! let mut e1 = build(0)?;
//! let mut e2 = build(1)?;
//!
//! let (_, actions) = e1.submit(Bytes::from_static(b"hello"), 0)?;
//! let mut delivered_at = Vec::new();
//!
//! // Ferry PDUs between the two entities until the exchange quiesces.
//! let mut to_e2: Vec<_> = actions
//!     .into_iter()
//!     .filter_map(|a| match a {
//!         Action::Broadcast(p) => Some(p),
//!         _ => None,
//!     })
//!     .collect();
//! let mut to_e1 = Vec::new();
//! for now in 1..20u64 {
//!     for pdu in std::mem::take(&mut to_e2) {
//!         for a in e2.on_pdu_actions(pdu, now)? {
//!             match a {
//!                 Action::Broadcast(p) => to_e1.push(p),
//!                 Action::Deliver(d) => delivered_at.push((2, d.data.clone())),
//!                 _ => {}
//!             }
//!         }
//!     }
//!     for pdu in std::mem::take(&mut to_e1) {
//!         for a in e1.on_pdu_actions(pdu, now)? {
//!             match a {
//!                 Action::Broadcast(p) => to_e2.push(p),
//!                 Action::Deliver(d) => delivered_at.push((1, d.data.clone())),
//!                 _ => {}
//!             }
//!         }
//!     }
//!     if to_e1.is_empty() && to_e2.is_empty() {
//!         break;
//!     }
//! }
//! // Both applications (including the sender's own) got the message.
//! assert_eq!(delivered_at.len(), 2);
//! assert!(delivered_at.iter().all(|(_, d)| &d[..] == b"hello"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use causal_order as order;
pub use co_baselines as baselines;
pub use co_protocol as protocol;
pub use co_transport as transport;
pub use co_wire as wire;
pub use mc_net as net;
