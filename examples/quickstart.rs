//! Quickstart: a three-entity cluster on the deterministic simulator.
//!
//! Builds the cluster, broadcasts a causal chain of messages, and shows
//! that every application delivers them in the same causality-preserving
//! order.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use causal_order::EntityId;
use co_broadcast::baselines::{BroadcasterNode, CoBroadcaster};
use co_broadcast::net::{SimConfig, SimTime, Simulator};
use co_broadcast::protocol::{Config, DeferralPolicy};

fn main() {
    let n = 3;

    // One CO-protocol entity per cluster member, plugged into the
    // simulated MC network (FIFO links, bounded receive buffers).
    let nodes: Vec<BroadcasterNode<CoBroadcaster>> = (0..n)
        .map(|i| {
            let config = Config::builder(1, n, EntityId::new(i as u32))
                .deferral(DeferralPolicy::Deferred { timeout_us: 2_000 })
                .build()
                .expect("valid configuration");
            BroadcasterNode::new(CoBroadcaster::new(config).expect("valid entity"))
        })
        .collect();
    let mut sim = Simulator::new(SimConfig::default(), nodes);

    // A causal chain: each message is submitted well after the previous
    // one has been delivered cluster-wide, so m1 ⇒ m2 ⇒ m3.
    sim.schedule_command(
        SimTime::ZERO,
        EntityId::new(0),
        Bytes::from_static(b"m1: hello"),
    );
    sim.schedule_command(
        SimTime::from_millis(50),
        EntityId::new(1),
        Bytes::from_static(b"m2: hello back"),
    );
    sim.schedule_command(
        SimTime::from_millis(100),
        EntityId::new(2),
        Bytes::from_static(b"m3: hello both"),
    );
    sim.run_until_idle();

    for (id, node) in sim.nodes() {
        println!("{id} delivered:");
        for d in node.delivered() {
            println!(
                "  [{:>6}µs] {}#{}: {}",
                d.at.as_micros(),
                d.origin,
                d.origin_seq,
                String::from_utf8_lossy(&d.data)
            );
        }
    }

    // Every entity delivered the chain in the same causal order.
    let logs: Vec<Vec<(EntityId, u64)>> = sim.nodes().map(|(_, n)| n.delivery_log()).collect();
    assert!(logs.windows(2).all(|w| w[0] == w[1]));
    println!("\nall {n} entities delivered the causal chain in the same order ✓");
}
