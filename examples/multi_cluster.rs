//! Multi-cluster demultiplexing: one node participating in two independent
//! causal-broadcast groups over one inbound PDU stream — the role the
//! paper's `CID` field exists for.
//!
//! ```sh
//! cargo run --example multi_cluster
//! ```

use bytes::Bytes;
use causal_order::EntityId;
use co_broadcast::protocol::{Action, ClusterMux, Config, DeferralPolicy, Entity};

fn entity(cid: u32, n: usize, me: u32) -> Entity {
    Entity::new(
        Config::builder(cid, n, EntityId::new(me))
            .deferral(DeferralPolicy::Immediate)
            .build()
            .expect("valid config"),
    )
    .expect("valid entity")
}

fn main() {
    // Node A is E1 of the "chat" cluster (cid 10) and E1 of the "metrics"
    // cluster (cid 20). Node B mirrors it.
    let mut node_a = ClusterMux::new();
    node_a.join(entity(10, 2, 0)).unwrap();
    node_a.join(entity(20, 2, 0)).unwrap();
    let mut node_b = ClusterMux::new();
    node_b.join(entity(10, 2, 1)).unwrap();
    node_b.join(entity(20, 2, 1)).unwrap();

    // Submit into both clusters from node A.
    let mut wire: Vec<co_broadcast::protocol::Pdu> = Vec::new();
    let push_broadcasts = |actions: Vec<Action>, wire: &mut Vec<_>| {
        for a in actions {
            match a {
                Action::Broadcast(pdu) => wire.push(pdu),
                Action::Deliver(d) => println!("node A delivered {d}"),
                _ => {}
            }
        }
    };
    let (_, acts) = node_a
        .submit(10, Bytes::from_static(b"chat: hi"), 0)
        .unwrap();
    push_broadcasts(acts, &mut wire);
    let (_, acts) = node_a
        .submit(20, Bytes::from_static(b"metric: 42"), 1)
        .unwrap();
    push_broadcasts(acts, &mut wire);

    // One shared "wire" carries both clusters' PDUs to node B; the mux
    // routes each by CID. Confirmations flow back the same way.
    let mut backlog = wire;
    for step in 0..20u64 {
        let mut to_a = Vec::new();
        for pdu in backlog.drain(..) {
            for action in node_b.on_pdu(pdu, step).unwrap() {
                match action {
                    Action::Broadcast(p) => to_a.push(p),
                    Action::Deliver(d) => {
                        println!("node B delivered {d}");
                    }
                    _ => {}
                }
            }
        }
        let mut to_b = Vec::new();
        for pdu in to_a {
            for action in node_a.on_pdu(pdu, step).unwrap() {
                match action {
                    Action::Broadcast(p) => to_b.push(p),
                    Action::Deliver(d) => println!("node A delivered {d}"),
                    _ => {}
                }
            }
        }
        if to_b.is_empty() {
            break;
        }
        backlog = to_b;
    }

    // Both clusters progressed independently on both nodes.
    for cid in [10, 20] {
        assert_eq!(
            node_a.entity(cid).unwrap().req()[0].get(),
            2,
            "cluster {cid} at A"
        );
        assert_eq!(
            node_b.entity(cid).unwrap().req()[0].get(),
            2,
            "cluster {cid} at B"
        );
    }
    println!("two independent clusters multiplexed over one node pair ✓");
}
