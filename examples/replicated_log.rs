//! Fault-tolerant replicated state — the paper's other motivating
//! application ("the same events have to occur in the same order in each
//! entity").
//!
//! Each entity hosts a replica of a tiny key-value store and broadcasts
//! its writes through the CO protocol. Because every replica applies the
//! *acknowledged* (globally stable, causally ordered) stream, causally
//! related writes apply in the same order everywhere. Writes that are
//! causally concurrent commute here (distinct keys per writer), so all
//! replicas converge to the same state even over a lossy network.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use bytes::Bytes;
use causal_order::EntityId;
use co_broadcast::baselines::{BroadcasterNode, CoBroadcaster};
use co_broadcast::net::{LossModel, SimConfig, SimTime, Simulator};
use co_broadcast::protocol::{Config, DeferralPolicy};
use std::collections::BTreeMap;

/// A write operation: `key = value`.
fn encode_op(key: &str, value: u64) -> Bytes {
    Bytes::from(format!("{key}={value}").into_bytes())
}

fn apply_op(state: &mut BTreeMap<String, u64>, data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let (key, value) = text.split_once('=').expect("well-formed op");
    // Last-writer-wins within the causally ordered stream.
    state.insert(key.to_string(), value.parse().expect("numeric value"));
}

fn main() {
    let n = 3;
    let nodes: Vec<BroadcasterNode<CoBroadcaster>> = (0..n)
        .map(|i| {
            let config = Config::builder(1, n, EntityId::new(i as u32))
                .deferral(DeferralPolicy::Deferred { timeout_us: 2_000 })
                .build()
                .expect("valid configuration");
            BroadcasterNode::new(CoBroadcaster::new(config).expect("valid entity"))
        })
        .collect();
    let mut sim = Simulator::new(
        SimConfig {
            loss: LossModel::Iid { p: 0.05 },
            seed: 11,
            ..SimConfig::default()
        },
        nodes,
    );

    // Each replica increments its own counter key; rounds are causally
    // chained by waiting for cluster-wide delivery between rounds.
    for round in 0..10u64 {
        for replica in 0..n {
            sim.schedule_command(
                SimTime::from_millis(round * 20 + replica as u64),
                EntityId::new(replica as u32),
                encode_op(&format!("counter.e{}", replica + 1), round + 1),
            );
        }
    }
    sim.run_until_idle();

    // Rebuild each replica's state from its delivered stream.
    let mut states: Vec<BTreeMap<String, u64>> = Vec::new();
    for (id, node) in sim.nodes() {
        let mut state = BTreeMap::new();
        for d in node.delivered() {
            apply_op(&mut state, &d.data);
        }
        println!("replica {id}: {state:?}");
        states.push(state);
    }

    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged!"
    );
    println!(
        "\nall {n} replicas converged to identical state over a lossy network \
         ({} in-flight drops recovered) ✓",
        sim.stats().link_drops
    );
}
