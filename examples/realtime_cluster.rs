//! The paper's testbed, live: one protocol entity per OS thread, bounded
//! channels as NIC buffers, wall-clock Tco/Tap measurement (Figure 8's
//! quantities on your machine).
//!
//! ```sh
//! cargo run --release --example realtime_cluster
//! ```

use bytes::Bytes;
use co_broadcast::transport::{Cluster, ClusterOptions};

fn main() {
    let n = 4;
    let messages = 100;

    let cluster = Cluster::start(n, ClusterOptions::default()).expect("cluster start");
    println!("started {n} entity threads; broadcasting {messages} messages from each…\n");
    for k in 0..messages {
        for i in 0..n {
            cluster
                .submit(i, Bytes::from(format!("payload-{k}")))
                .expect("submit");
        }
    }
    let reports = cluster.shutdown();

    let total = n * messages;
    for r in &reports {
        println!(
            "{}: delivered {:>4}/{total}   Tco {{{}}}   Tap {{{}}}",
            r.id,
            r.delivered.len(),
            r.tco(),
            r.tap(),
        );
        assert_eq!(r.delivered.len(), total);
    }

    let all_tco: Vec<std::time::Duration> = reports
        .iter()
        .flat_map(|r| r.tco_samples.iter().copied())
        .collect();
    let all_tap: Vec<std::time::Duration> = reports
        .iter()
        .flat_map(|r| r.tap_samples.iter().copied())
        .collect();
    println!(
        "\ncluster-wide: Tco {}  |  Tap {}",
        co_broadcast::transport::TimingSummary::of(&all_tco),
        co_broadcast::transport::TimingSummary::of(&all_tap),
    );
    println!("(the fig8 experiment sweeps this over n — see EXPERIMENTS.md)");
}
