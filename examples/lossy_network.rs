//! Loss detection and selective recovery — the paper's headline mechanism.
//!
//! Runs a burst of broadcasts over a network that loses 10% of all
//! transmissions (plus buffer overruns from a deliberately tiny NIC
//! buffer), then prints the failure-detection and retransmission counters
//! and verifies that *every* entity still delivered *every* message in
//! causal order.
//!
//! ```sh
//! cargo run --example lossy_network
//! ```

use bytes::Bytes;
use causal_order::EntityId;
use co_broadcast::baselines::{BroadcasterNode, CoBroadcaster};
use co_broadcast::net::{LossModel, SimConfig, SimTime, Simulator};
use co_broadcast::protocol::{Config, DeferralPolicy};

fn main() {
    let n = 4;
    let messages_per_sender = 25;

    let nodes: Vec<BroadcasterNode<CoBroadcaster>> = (0..n)
        .map(|i| {
            let config = Config::builder(1, n, EntityId::new(i as u32))
                .deferral(DeferralPolicy::Deferred { timeout_us: 2_000 })
                .build()
                .expect("valid configuration");
            BroadcasterNode::new(CoBroadcaster::new(config).expect("valid entity"))
        })
        .collect();
    let mut sim = Simulator::new(
        SimConfig {
            loss: LossModel::Iid { p: 0.10 },
            inbox_capacity: 24, // small NIC buffer: overruns under bursts
            seed: 2024,
            ..SimConfig::default()
        },
        nodes,
    );

    for k in 0..messages_per_sender {
        for s in 0..n {
            sim.schedule_command(
                SimTime::from_micros(k as u64 * 300),
                EntityId::new(s as u32),
                Bytes::from(format!("msg {k} from E{}", s + 1).into_bytes()),
            );
        }
    }
    sim.run_until_idle();

    let stats = sim.stats();
    println!(
        "network: {} transmissions, {} lost in flight, {} lost to buffer overrun",
        stats.link_sends, stats.link_drops, stats.overrun_drops
    );
    println!("effective loss rate: {:.1}%\n", stats.loss_rate() * 100.0);

    let total = n * messages_per_sender;
    for (id, node) in sim.nodes() {
        let m = node.inner().entity().metrics();
        println!(
            "{id}: delivered {}/{total}  (F1 gaps {}, F2 gaps {}, RETs sent {}, \
             retransmitted {}, repaired out-of-order {})",
            node.delivered().len(),
            m.f1_detections(),
            m.f2_detections(),
            m.ret_sent(),
            m.retransmissions_sent(),
            m.accepted_from_reorder(),
        );
        assert_eq!(node.delivered().len(), total, "lost deliveries at {id}");
    }
    println!("\ndespite the loss, every entity delivered every message, causally ordered ✓");
}
