//! CSCW scenario from the paper's introduction: a shared whiteboard /
//! group-editing session where replies must never appear before the
//! message they answer.
//!
//! Three users collaborate: Alice posts a question, Bob answers it (a
//! *causally dependent* message), and Carol posts an unrelated note
//! concurrently. The CO service guarantees every participant sees the
//! answer after the question; the concurrent note may interleave anywhere.
//!
//! ```sh
//! cargo run --example collaborative_editor
//! ```

use bytes::Bytes;
use causal_order::EntityId;
use co_broadcast::baselines::{BroadcasterNode, CoBroadcaster};
use co_broadcast::net::{DelayModel, SimConfig, SimDuration, SimTime, Simulator};
use co_broadcast::protocol::{Config, DeferralPolicy};

const USERS: [&str; 3] = ["alice", "bob", "carol"];

fn main() {
    let n = USERS.len();
    let nodes: Vec<BroadcasterNode<CoBroadcaster>> = (0..n)
        .map(|i| {
            let config = Config::builder(7, n, EntityId::new(i as u32))
                .deferral(DeferralPolicy::Immediate)
                .build()
                .expect("valid configuration");
            BroadcasterNode::new(CoBroadcaster::new(config).expect("valid entity"))
        })
        .collect();
    // Uneven link delays: carol is "far away", so raw arrival order would
    // differ between participants — exactly when causal ordering matters.
    let ms = |v: u64| SimDuration::from_millis(v);
    let delays = vec![
        vec![ms(0), ms(1), ms(9)],
        vec![ms(1), ms(0), ms(9)],
        vec![ms(9), ms(9), ms(0)],
    ];
    let mut sim = Simulator::new(
        SimConfig {
            network: DelayModel::PerPair(delays).into(),
            ..SimConfig::default()
        },
        nodes,
    );

    // Alice asks; Bob replies after *seeing* the question; Carol posts a
    // concurrent note at the same instant as Alice.
    sim.schedule_command(
        SimTime::ZERO,
        EntityId::new(0),
        Bytes::from_static(b"alice: where shall we put the title?"),
    );
    sim.schedule_command(
        SimTime::ZERO,
        EntityId::new(2),
        Bytes::from_static(b"carol: uploaded the logo assets"),
    );
    // Bob's reply is submitted once Alice's question has reached him and
    // been delivered (simulated "user read it, then typed").
    sim.schedule_command(
        SimTime::from_millis(40),
        EntityId::new(1),
        Bytes::from_static(b"bob: top-left, above the fold"),
    );
    sim.run_until_idle();

    for (id, node) in sim.nodes() {
        println!("view of {}:", USERS[id.index()]);
        for d in node.delivered() {
            println!("  {}", String::from_utf8_lossy(&d.data));
        }
        println!();
    }

    // Invariant: everyone sees bob's answer after alice's question.
    for (id, node) in sim.nodes() {
        let log = node.delivery_log();
        let q = log
            .iter()
            .position(|&(o, _)| o == EntityId::new(0))
            .unwrap();
        let a = log
            .iter()
            .position(|&(o, _)| o == EntityId::new(1))
            .unwrap();
        assert!(q < a, "{}: answer before question!", USERS[id.index()]);
    }
    println!("causal invariant holds: no participant ever sees the answer before the question ✓");
}
